// WhoisParser — the library's primary public API (the paper's contribution).
//
// A two-level statistical parser (§3.2): a first-level CRF segments a thick
// WHOIS record into six blocks (registrar / domain / date / registrant /
// other / null); a second-level CRF refines registrant blocks into twelve
// contact subfields. Field values are then extracted from each labeled line
// using its title/value separator.
//
// Typical use:
//   auto parser = whois::WhoisParser::Train(labeled_records);
//   whois::ParsedWhois parsed = parser.Parse(record_text);
//   std::cout << parsed.registrant.country;
//
// Models can be persisted with Save/Load, and adapted to new formats with
// Adapt() by supplying a handful of newly labeled examples (§5.3).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "crf/tagger.h"
#include "crf/trainer.h"
#include "crf/workspace.h"
#include "text/tokenizer.h"
#include "whois/record.h"
#include "whois/training_data.h"

namespace whoiscrf::util {
class ThreadPool;
}  // namespace whoiscrf::util

namespace whoiscrf::obs {
class Counter;
class Histogram;
}  // namespace whoiscrf::obs

namespace whoiscrf::whois {

struct WhoisParserOptions {
  crf::TrainerOptions trainer;
  text::TokenizerOptions tokenizer;
};

// Pre-resolved field-routing decisions for one line. Every title-keyword
// test in RouteLine is a pure function of the cached (title, value) pair,
// so the substring scans run once per distinct line, not once per parse.
// Values are the RegistrarRoute/DomainRoute/DateRoute enums in
// whois_parser.cc; 0 always means "no action".
struct LineRoutePlan {
  uint8_t registrar = 0;
  uint8_t domain = 0;
  uint8_t date = 0;
};

// Memoized compilation + unary scores for one distinct line, for both CRF
// levels. WHOIS corpora repeat lines massively (the paper's survey parses
// 102M records drawn from a few thousand registrar templates), so caching
// by line content skips tokenization, word classification, vocabulary
// interning, and the unary part of scoring on every repeat.
struct LineCacheEntry {
  crf::CompiledItem level1, level2;
  std::vector<double> unary1, unary2;  // num_labels() doubles per level
  // Field-extraction view of the line (separator split, title lowered,
  // routing decisions), also a pure function of the text.
  std::string title_lower, value;
  LineRoutePlan plan;
};

// One interned attribute of a memoized word: both levels' vocabulary ids
// and transition slots (-1 if absent), plus the attribute's row offset in
// the parser's packed unary table. `is_word_attr` marks the word
// attribute itself (vs a class attribute); it alone carries the caller's
// transition flag on replay.
struct WordMappedAttr {
  int32_t id1, slot1;
  int32_t id2, slot2;
  int32_t packed;
  bool is_word_attr;
};

// One slot of the direct-mapped word cache: memoized attribute emissions
// for a distinct (title flag, raw word) key, inline — probe, key compare,
// and replay all touch a couple of cache lines and nothing on the heap. A
// word's normalized form, class attributes, and vocabulary ids are pure
// functions of its bytes for a fixed parser, so a repeated word — even
// inside a never-seen line — skips normalization, classification, and
// per-attribute hash probes. `emit_count` is the total number of
// attributes the word emits (including ones outside both vocabularies;
// the tokenizer needs it for EMPTYLINE accounting); `mapped` holds only
// the in-vocabulary ones, in emission order. Keys longer than the inline
// buffer or words with more mapped attributes than the inline array are
// simply not cached.
struct WordSlot {
  static constexpr size_t kKeyMax = 31;
  static constexpr size_t kMappedMax = 6;
  uint64_t hash = 0;
  uint8_t len = 0;  // key length; 0 = vacant
  uint8_t emit_count = 0;
  uint8_t n_mapped = 0;
  char key[kKeyMax];
  WordMappedAttr mapped[kMappedMax];
};

// Transparent string hash so map probes can take a string_view key.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(std::string_view(s));
  }
};

// Memo for ExtractFieldsCached: route plans of *titled* lines keyed by
// lowered title (for a fixed title the plan is value-independent except
// for the URL check, which the cached path re-tests per value), plus
// reused split buffers so steady-state extraction allocates nothing.
// Not thread-safe; use one per thread (ParseWorkspace carries one).
// Plans are pure text functions, independent of any parser instance, so
// the memo never needs invalidation.
struct FieldRouteCache {
  std::unordered_map<std::string, LineRoutePlan, TransparentStringHash,
                     std::equal_to<>>
      by_title;
  std::string title, value;
};

// One slot of the direct-mapped line cache. `key` (layout flags + text)
// empty means vacant; `record_seq` is the last record that read or wrote
// the slot, which pins it against same-record eviction (line_entries
// holds raw pointers into slots for the duration of one Parse).
struct LineSlot {
  uint64_t hash = 0;
  uint64_t record_seq = 0;
  std::string key;
  LineCacheEntry entry;
};

// Per-thread scratch for the parsing fast path: split lines, the line
// cache, sub-label buffers, and all CRF inference state. After a few
// records the buffers stop growing and Parse runs allocation-free on
// cache hits (apart from the strings of the ParsedWhois it returns).
struct ParseWorkspace {
  // Opt-in beam decoding (cli --beam): 0 decodes both CRF levels with exact
  // Viterbi (the default, bit-identical to ParseNaive); K > 0 uses
  // crf::DecodeBeam with width K, pruned to the label bigrams observed in
  // training (CrfModel::transition_support). Labels can then differ from
  // the exact path; bench_parse_throughput reports the agreement delta.
  int beam_width = 0;

  std::vector<text::Line> lines;
  std::vector<Level2Label> sub_labels;
  std::vector<Level2Label> other_subs;
  crf::Workspace crf;

  // Line cache: direct-mapped, fixed slot count, eviction on collision.
  // Keyed by layout flags + text — the only Line fields feature extraction
  // reads. A template line that repeats across records is re-inserted as
  // fast as one-off lines (dates, domains) can evict it, so the hit rate
  // tracks the corpus's instantaneous template overlap instead of decaying
  // once a grow-only map would have filled: memory stays bounded with no
  // saturation cliff. Eviction recompiles *in place*, reusing the slot's
  // vectors and strings, so misses allocate nothing once capacities have
  // grown. Entries are valid for exactly one parser instance
  // (`cache_owner`); Parse invalidates all slots when handed a workspace
  // last used with a different parser.
  uint64_t cache_owner = 0;
  uint64_t record_seq = 0;
  std::vector<LineSlot> slots;  // sized kLineCacheSlots on first use
  // Same-record slot collisions compile into this pool instead of
  // evicting (deque: pointer-stable growth); entries are reused across
  // records via `overflow_used`, never destroyed.
  std::deque<LineCacheEntry> overflow;
  size_t overflow_used = 0;
  std::vector<const LineCacheEntry*> line_entries;  // per line, this record
  std::vector<const LineCacheEntry*> block;         // level-2 subset
  std::string key;

  // Word cache, keyed by a title/value flag byte + the raw word bytes.
  // Serves line-cache *misses*: template churn produces novel lines made
  // of familiar words (dates, domains, boilerplate vocabulary), so the
  // per-word work is shared even when the per-line entry cannot be.
  // Direct-mapped with eviction on collision, like the line cache.
  // Validity follows `cache_owner`.
  std::vector<WordSlot> word_slots;  // sized kWordCacheSlots on first use

  // Route-plan memo for ExtractFieldsCached (the cascade's cheap tiers).
  // Parser-independent, so it survives cache_owner changes untouched.
  FieldRouteCache field_routes;
};

class WhoisParser {
 public:
  // Trains both CRF levels from labeled records.
  static WhoisParser Train(const std::vector<LabeledRecord>& records,
                           const WhoisParserOptions& options = {});

  // Re-trains from `records` (typically: the original training set plus a
  // handful of newly labeled failure cases), warm-starting from this
  // parser's weights (§5.3 maintainability workflow).
  WhoisParser Adapt(const std::vector<LabeledRecord>& records) const;

  // Parses one thick record: Viterbi-labels every line, then extracts
  // structured fields. Uses a thread-local workspace internally; the
  // overload below lets callers manage workspaces explicitly.
  ParsedWhois Parse(std::string_view record_text) const;

  // Fast-path Parse with caller-provided scratch. Field-identical output
  // (including log_prob, bit-for-bit) to Parse/ParseNaive.
  ParsedWhois Parse(std::string_view record_text, ParseWorkspace& ws) const;

  // The pre-workspace implementation, kept as a differential reference:
  // allocates per line and per record, runs full forward-backward, and
  // builds a fresh tagger per level-2 block. bench_parse_throughput
  // measures the fast path's speedup against it, and tests assert
  // equivalence.
  ParsedWhois ParseNaive(std::string_view record_text) const;

  // Parses many records on a thread pool, one workspace per chunk.
  // Results are in input order and identical to calling Parse on each.
  // `beam_width` > 0 decodes with beam-pruned Viterbi (see
  // ParseWorkspace::beam_width); 0 is exact.
  std::vector<ParsedWhois> ParseBatch(std::span<const std::string> records,
                                      util::ThreadPool& pool,
                                      int beam_width = 0) const;

  // Level-1 labels only (used by the evaluation harness).
  std::vector<Level1Label> LabelLines(std::string_view record_text) const;

  // Level-2 labels for a list of registrant-block lines.
  std::vector<Level2Label> LabelRegistrantLines(
      const std::vector<std::string>& lines) const;

  // --- Persistence ------------------------------------------------------
  void Save(std::ostream& os) const;
  static WhoisParser Load(std::istream& is);
  void SaveFile(const std::string& path) const;
  static WhoisParser LoadFile(const std::string& path);

  const crf::CrfModel& level1_model() const { return *level1_; }
  const crf::CrfModel& level2_model() const { return *level2_; }
  const WhoisParserOptions& options() const { return options_; }

 private:
  WhoisParser(std::unique_ptr<crf::CrfModel> level1,
              std::unique_ptr<crf::CrfModel> level2,
              WhoisParserOptions options);

  // Models are heap-held so the parser stays cheaply movable.
  std::unique_ptr<crf::CrfModel> level1_;
  std::unique_ptr<crf::CrfModel> level2_;
  WhoisParserOptions options_;
  text::Tokenizer tokenizer_;
  // Identifies this parser to ParseWorkspace line caches; drawn from a
  // process-wide counter so ids are never reused.
  uint64_t instance_id_;

  // Registry metrics for the fast path (whoiscrf_parse_*, shared across
  // parser instances; see docs/observability.md). Resolved once at
  // construction so Parse pays only per-thread-sharded relaxed adds —
  // cache hit/miss counts accumulate in locals and flush once per record.
  struct ParseMetrics {
    obs::Counter* records = nullptr;
    obs::Counter* lines = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* workspace_cold = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  ParseMetrics metrics_;

  // Both levels' vocabularies merged into one attr -> (id, slot) table, so
  // compiling a cache-miss line probes one hash map per attribute instead
  // of two vocabularies plus two slot maps. -1 marks "not in this level".
  struct DualAttr {
    int id1 = -1, slot1 = -1;
    int id2 = -1, slot2 = -1;
    // Offset of this attribute's row in packed_unary_: L1 doubles of
    // level-1 unary weights followed by L2 of level-2 (zeros where the
    // attribute is absent from a level).
    int32_t packed = -1;
  };
  std::unordered_map<std::string, DualAttr, TransparentStringHash,
                     std::equal_to<>>
      attr_map_;

  // Both levels' unary weight rows for each merged attribute, adjacent in
  // one cache-dense table: scoring an interned attribute against both
  // CRFs streams one (L1+L2)-double row instead of gathering from two
  // separately laid-out weight arrays. Values are bit-copies of the
  // models' rows, so sums match CrfModel::UnaryScores exactly.
  std::vector<double> packed_unary_;
};

// Field extraction from labeled lines (exposed for reuse by the baselines
// and tests): routes each line's value into the ParsedWhois struct
// according to its level-1 label and title keywords. `other_sub_labels`
// refines lines labeled `other` into the other-contact proxy fields; pass
// an empty vector to skip that refinement.
void ExtractFields(const std::vector<text::Line>& lines,
                   const std::vector<Level1Label>& labels,
                   const std::vector<Level2Label>& registrant_sub_labels,
                   ParsedWhois& out,
                   const std::vector<Level2Label>& other_sub_labels = {});

// ExtractFields with a per-thread route-plan memo, for callers that
// extract from many records *without* the CRF fast path (whose line cache
// already memoizes plans): the title-keyword scans run once per distinct
// title instead of once per line. Produces exactly what ExtractFields
// produces.
void ExtractFieldsCached(const std::vector<text::Line>& lines,
                         const std::vector<Level1Label>& labels,
                         const std::vector<Level2Label>& registrant_sub_labels,
                         ParsedWhois& out, FieldRouteCache& cache);

}  // namespace whoiscrf::whois
