#include "whois/stream_pipeline.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"

namespace whoiscrf::whois {

namespace {

// Registry handles for the streaming pipeline (whoiscrf_stream_*; see
// docs/observability.md). Resolved once; ParseStream flushes per-call
// tallies, and the queue-depth gauges are updated once per batch hand-off.
struct StreamMetrics {
  obs::Counter* records;
  obs::Counter* batches;
  obs::Gauge* reader_stall_seconds;
  obs::Gauge* worker_stall_seconds;
  obs::Gauge* sink_stall_seconds;
  obs::Gauge* input_depth;
  obs::Gauge* output_depth;
};

const StreamMetrics& GetStreamMetrics() {
  static const StreamMetrics metrics = [] {
    auto& reg = obs::Registry::Global();
    StreamMetrics m;
    m.records = reg.GetCounter("whoiscrf_stream_records_total",
                               "Records parsed through the streaming pipeline");
    m.batches = reg.GetCounter("whoiscrf_stream_batches_total",
                               "Record batches handed between pipeline stages");
    m.reader_stall_seconds = reg.GetGauge(
        "whoiscrf_stream_reader_stall_seconds_total",
        "Cumulative seconds the reader stage blocked on a full input queue");
    m.worker_stall_seconds = reg.GetGauge(
        "whoiscrf_stream_worker_stall_seconds_total",
        "Cumulative seconds parser workers blocked on pipeline queues "
        "(summed across workers)");
    m.sink_stall_seconds = reg.GetGauge(
        "whoiscrf_stream_sink_stall_seconds_total",
        "Cumulative seconds the in-order sink blocked waiting for parses");
    m.input_depth = reg.GetGauge(
        "whoiscrf_stream_queue_depth",
        "Batches currently queued between pipeline stages",
        {{"queue", "input"}});
    m.output_depth = reg.GetGauge(
        "whoiscrf_stream_queue_depth",
        "Batches currently queued between pipeline stages",
        {{"queue", "output"}});
    return m;
  }();
  return metrics;
}

struct Batch {
  uint64_t seq = 0;
  std::vector<std::string> records;
  std::vector<ParsedWhois> parses;
};

}  // namespace

StreamPipelineStats ParseStream(
    const WhoisParser& parser, RecordSource& source,
    const StreamPipelineOptions& options,
    const std::function<void(uint64_t index, const std::string& record,
                             const ParsedWhois& parsed)>& sink) {
  const StreamMetrics& metrics = GetStreamMetrics();
  obs::ScopedSpan span("whois.parse_stream");

  const size_t threads =
      options.threads != 0
          ? options.threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t batch_records = std::max<size_t>(1, options.batch_records);

  util::BoundedQueue<Batch> input(options.queue_capacity);
  util::BoundedQueue<Batch> output(options.queue_capacity);

  // First failure from any stage wins; the queues are cancelled so every
  // other stage unblocks and exits.
  std::mutex error_mu;
  std::exception_ptr error;
  auto fail = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::move(e);
    }
    input.Cancel();
    output.Cancel();
  };

  StreamPipelineStats stats;
  std::mutex stats_mu;  // guards the worker-stall sum across worker exits

  std::thread reader([&] {
    double stalled = 0.0;
    try {
      Batch batch;
      uint64_t seq = 0;
      bool more = true;
      while (more) {
        batch.seq = seq;
        batch.records.clear();
        std::string record;
        while (batch.records.size() < batch_records &&
               (more = source.Next(record))) {
          batch.records.push_back(std::move(record));
        }
        if (batch.records.empty()) break;
        if (!input.Push(std::move(batch), &stalled)) break;  // cancelled
        metrics.input_depth->Set(static_cast<double>(input.Size()));
        batch = Batch{};
        ++seq;
      }
    } catch (...) {
      fail(std::current_exception());
    }
    input.Close();
    metrics.reader_stall_seconds->Add(stalled);
    stats.reader_stall_seconds = stalled;
  });

  // The last worker out closes the output queue so the sink loop ends.
  std::atomic<size_t> live_workers{threads};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      double stalled = 0.0;
      try {
        ParseWorkspace ws;
        while (auto batch = input.Pop(&stalled)) {
          obs::ScopedSpan batch_span("whois.stream_batch");
          batch->parses.reserve(batch->records.size());
          for (const std::string& record : batch->records) {
            batch->parses.push_back(parser.Parse(record, ws));
          }
          if (!output.Push(std::move(*batch), &stalled)) break;  // cancelled
          metrics.output_depth->Set(static_cast<double>(output.Size()));
        }
      } catch (...) {
        fail(std::current_exception());
      }
      if (live_workers.fetch_sub(1) == 1) output.Close();
      metrics.worker_stall_seconds->Add(stalled);
      std::lock_guard<std::mutex> lock(stats_mu);
      stats.worker_stall_seconds += stalled;
    });
  }

  // In-order emission on the calling thread: stash out-of-order batches
  // until the next sequence number lands. The stash stays bounded because
  // every earlier stage blocks on a bounded queue.
  std::map<uint64_t, Batch> pending;
  uint64_t next_seq = 0;
  uint64_t emitted = 0;
  double sink_stalled = 0.0;
  try {
    while (auto batch = output.Pop(&sink_stalled)) {
      pending.emplace(batch->seq, std::move(*batch));
      for (auto it = pending.find(next_seq); it != pending.end();
           it = pending.find(next_seq)) {
        const Batch& ready = it->second;
        for (size_t r = 0; r < ready.records.size(); ++r) {
          sink(emitted, ready.records[r], ready.parses[r]);
          ++emitted;
        }
        ++stats.batches;
        pending.erase(it);
        ++next_seq;
      }
    }
  } catch (...) {
    fail(std::current_exception());
  }

  reader.join();
  for (std::thread& worker : workers) worker.join();

  {
    std::lock_guard<std::mutex> lock(error_mu);
    if (error) std::rethrow_exception(error);
  }

  stats.records = emitted;
  stats.sink_stall_seconds = sink_stalled;
  metrics.records->Inc(emitted);
  metrics.batches->Inc(stats.batches);
  metrics.sink_stall_seconds->Add(sink_stalled);
  metrics.input_depth->Set(0.0);
  metrics.output_depth->Set(0.0);
  return stats;
}

}  // namespace whoiscrf::whois
