#include "whois/stream_pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/string_util.h"

namespace whoiscrf::whois {

namespace {

// Registry handles for the streaming pipeline (whoiscrf_stream_*; see
// docs/observability.md). Resolved once; ParseStream flushes per-call
// tallies, and the queue-depth gauges are updated once per batch hand-off.
struct StreamMetrics {
  obs::Counter* records;
  obs::Counter* batches;
  obs::Counter* quarantined;
  obs::Counter* watchdog_trips;
  obs::Gauge* reader_stall_seconds;
  obs::Gauge* worker_stall_seconds;
  obs::Gauge* sink_stall_seconds;
  obs::Gauge* input_depth;
  obs::Gauge* output_depth;
};

const StreamMetrics& GetStreamMetrics() {
  static const StreamMetrics metrics = [] {
    auto& reg = obs::Registry::Global();
    StreamMetrics m;
    m.records = reg.GetCounter("whoiscrf_stream_records_total",
                               "Records parsed through the streaming pipeline");
    m.batches = reg.GetCounter("whoiscrf_stream_batches_total",
                               "Record batches handed between pipeline stages");
    m.quarantined = reg.GetCounter(
        "whoiscrf_stream_quarantined_total",
        "Records diverted to quarantine because their parse threw or they "
        "exceeded max_record_bytes");
    m.watchdog_trips = reg.GetCounter(
        "whoiscrf_stream_watchdog_trips_total",
        "Times the stage watchdog cancelled a pipeline run for making no "
        "progress within the configured deadline");
    m.reader_stall_seconds = reg.GetGauge(
        "whoiscrf_stream_reader_stall_seconds_total",
        "Cumulative seconds the reader stage blocked on a full input queue");
    m.worker_stall_seconds = reg.GetGauge(
        "whoiscrf_stream_worker_stall_seconds_total",
        "Cumulative seconds parser workers blocked on pipeline queues "
        "(summed across workers)");
    m.sink_stall_seconds = reg.GetGauge(
        "whoiscrf_stream_sink_stall_seconds_total",
        "Cumulative seconds the in-order sink blocked waiting for parses");
    m.input_depth = reg.GetGauge(
        "whoiscrf_stream_queue_depth",
        "Batches currently queued between pipeline stages",
        {{"queue", "input"}});
    m.output_depth = reg.GetGauge(
        "whoiscrf_stream_queue_depth",
        "Batches currently queued between pipeline stages",
        {{"queue", "output"}});
    return m;
  }();
  return metrics;
}

struct Batch {
  uint64_t seq = 0;
  uint64_t first_index = 0;  // global input index of records[0]
  std::vector<std::string> records;
  std::vector<ParsedWhois> parses;
  // Containment mode only: errors[r] non-empty means records[r] was
  // quarantined (parses[r] is a placeholder). Empty vector when
  // containment is off.
  std::vector<std::string> errors;
};

}  // namespace

StreamPipelineStats ParseStream(
    const WhoisParser& parser, RecordSource& source,
    const StreamPipelineOptions& options,
    const std::function<void(uint64_t index, const std::string& record,
                             const ParsedWhois& parsed)>& sink) {
  const StreamMetrics& metrics = GetStreamMetrics();
  obs::ScopedSpan span("whois.parse_stream");

  const size_t threads =
      options.threads != 0
          ? options.threads
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t batch_records = std::max<size_t>(1, options.batch_records);

  util::BoundedQueue<Batch> input(options.queue_capacity);
  util::BoundedQueue<Batch> output(options.queue_capacity);

  // First failure from any stage wins; the queues are cancelled so every
  // other stage unblocks and exits.
  std::mutex error_mu;
  std::exception_ptr error;
  auto fail = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::move(e);
    }
    input.Cancel();
    output.Cancel();
  };

  StreamPipelineStats stats;
  std::mutex stats_mu;  // guards the worker-stall sum across worker exits

  // Watchdog heartbeat: bumped on every queue hand-off and every emitted
  // batch. The monitor thread only compares values, so relaxed ordering
  // is enough.
  std::atomic<uint64_t> progress{0};

  std::thread reader([&] {
    double stalled = 0.0;
    try {
      Batch batch;
      uint64_t seq = 0;
      uint64_t next_index = 0;
      bool more = true;
      while (more) {
        batch.seq = seq;
        batch.first_index = next_index;
        batch.records.clear();
        std::string record;
        while (batch.records.size() < batch_records &&
               (more = source.Next(record))) {
          batch.records.push_back(std::move(record));
        }
        if (batch.records.empty()) break;
        next_index += batch.records.size();
        if (!input.Push(std::move(batch), &stalled)) break;  // cancelled
        progress.fetch_add(1, std::memory_order_relaxed);
        metrics.input_depth->Set(static_cast<double>(input.Size()));
        batch = Batch{};
        ++seq;
      }
    } catch (...) {
      fail(std::current_exception());
    }
    input.Close();
    metrics.reader_stall_seconds->Add(stalled);
    stats.reader_stall_seconds = stalled;
  });

  // The last worker out closes the output queue so the sink loop ends.
  std::atomic<size_t> live_workers{threads};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      double stalled = 0.0;
      try {
        ParseWorkspace ws;
        const bool contain = static_cast<bool>(options.on_quarantine);
        auto do_parse = [&](const std::string& record) {
          return options.parse_override ? options.parse_override(record, ws)
                                        : parser.Parse(record, ws);
        };
        while (auto batch = input.Pop(&stalled)) {
          progress.fetch_add(1, std::memory_order_relaxed);
          obs::ScopedSpan batch_span("whois.stream_batch");
          batch->parses.reserve(batch->records.size());
          if (contain) batch->errors.reserve(batch->records.size());
          for (const std::string& record : batch->records) {
            if (!contain) {
              batch->parses.push_back(do_parse(record));
              continue;
            }
            // Containment: only the parse itself is guarded. Anything a
            // queue or allocator throws still reaches fail() below.
            std::string err;
            if (options.max_record_bytes != 0 &&
                record.size() > options.max_record_bytes) {
              err = util::Format("record of %zu bytes exceeds limit of %llu",
                                 record.size(),
                                 static_cast<unsigned long long>(
                                     options.max_record_bytes));
              batch->parses.emplace_back();
            } else {
              try {
                batch->parses.push_back(do_parse(record));
              } catch (const std::exception& e) {
                err = e.what();
                if (err.empty()) err = "parser exception";
                batch->parses.resize(batch->errors.size() + 1);
              } catch (...) {
                err = "parser exception (non-standard)";
                batch->parses.resize(batch->errors.size() + 1);
              }
            }
            batch->errors.push_back(std::move(err));
          }
          if (!output.Push(std::move(*batch), &stalled)) break;  // cancelled
          progress.fetch_add(1, std::memory_order_relaxed);
          metrics.output_depth->Set(static_cast<double>(output.Size()));
        }
      } catch (...) {
        fail(std::current_exception());
      }
      if (live_workers.fetch_sub(1) == 1) output.Close();
      metrics.worker_stall_seconds->Add(stalled);
      std::lock_guard<std::mutex> lock(stats_mu);
      stats.worker_stall_seconds += stalled;
    });
  }

  // Stage watchdog: trips when the heartbeat counter sits still for the
  // full deadline, then cancels both queues so every blocked stage
  // unwinds. Checks in quarter-deadline slices so shutdown latency stays
  // bounded without busy-waiting.
  std::mutex watchdog_mu;
  std::condition_variable watchdog_cv;
  bool pipeline_done = false;
  std::thread watchdog;
  if (options.watchdog_timeout_ms > 0) {
    watchdog = std::thread([&] {
      const auto deadline =
          std::chrono::milliseconds(options.watchdog_timeout_ms);
      const auto slice = std::max(deadline / 4,
                                  std::chrono::milliseconds(1));
      uint64_t last = progress.load(std::memory_order_relaxed);
      auto stale = std::chrono::milliseconds(0);
      std::unique_lock<std::mutex> lock(watchdog_mu);
      for (;;) {
        if (watchdog_cv.wait_for(lock, slice, [&] { return pipeline_done; })) {
          return;
        }
        const uint64_t now = progress.load(std::memory_order_relaxed);
        if (now != last) {
          last = now;
          stale = std::chrono::milliseconds(0);
          continue;
        }
        stale += slice;
        if (stale < deadline) continue;
        const size_t in_depth = input.Size();
        const size_t out_depth = output.Size();
        const size_t workers_alive = live_workers.load();
        // Heuristic stage diagnosis from where batches piled up.
        const char* suspect =
            out_depth > 0 ? "sink"
            : in_depth >= options.queue_capacity
                ? "parser workers"
                : "reader/source";
        metrics.watchdog_trips->Inc();
        fail(std::make_exception_ptr(StreamStallError(util::Format(
            "stream watchdog: no pipeline progress for %llu ms "
            "(input queue depth %zu/%zu, output queue depth %zu/%zu, "
            "live workers %zu) — suspect stage: %s",
            static_cast<unsigned long long>(options.watchdog_timeout_ms),
            in_depth, options.queue_capacity, out_depth,
            options.queue_capacity, workers_alive, suspect))));
        return;
      }
    });
  }

  // In-order emission on the calling thread: stash out-of-order batches
  // until the next sequence number lands. The stash stays bounded because
  // every earlier stage blocks on a bounded queue. Record indices come
  // from the batch (global input positions), so the sink sees gaps where
  // records were quarantined.
  std::map<uint64_t, Batch> pending;
  uint64_t next_seq = 0;
  uint64_t emitted = 0;
  uint64_t quarantined = 0;
  double sink_stalled = 0.0;
  try {
    while (auto batch = output.Pop(&sink_stalled)) {
      progress.fetch_add(1, std::memory_order_relaxed);
      pending.emplace(batch->seq, std::move(*batch));
      for (auto it = pending.find(next_seq); it != pending.end();
           it = pending.find(next_seq)) {
        const Batch& ready = it->second;
        for (size_t r = 0; r < ready.records.size(); ++r) {
          const uint64_t index = ready.first_index + r;
          if (!ready.errors.empty() && !ready.errors[r].empty()) {
            options.on_quarantine(index, ready.records[r], ready.errors[r]);
            ++quarantined;
          } else {
            sink(index, ready.records[r], ready.parses[r]);
            ++emitted;
          }
        }
        ++stats.batches;
        progress.fetch_add(1, std::memory_order_relaxed);
        pending.erase(it);
        ++next_seq;
      }
    }
  } catch (...) {
    fail(std::current_exception());
  }

  reader.join();
  for (std::thread& worker : workers) worker.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu);
      pipeline_done = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }

  {
    std::lock_guard<std::mutex> lock(error_mu);
    if (error) std::rethrow_exception(error);
  }

  stats.records = emitted;
  stats.quarantined = quarantined;
  stats.sink_stall_seconds = sink_stalled;
  metrics.records->Inc(emitted);
  metrics.quarantined->Inc(quarantined);
  metrics.batches->Inc(stats.batches);
  metrics.sink_stall_seconds->Add(sink_stalled);
  metrics.input_depth->Set(0.0);
  metrics.output_depth->Set(0.0);
  return stats;
}

}  // namespace whoiscrf::whois
