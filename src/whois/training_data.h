// Plain-text interchange format for labeled WHOIS records, so training sets
// can be inspected, hand-corrected (the paper's adaptation workflow: "the
// correctly labeled WHOIS record can be added to the existing training
// set"), and versioned.
//
// Format, one record at a time:
//   @ <domain>
//   <label>\t<raw line text>      (label = level1 or level1/level2, or "-"
//                                  for unlabeled raw lines: blanks, rules)
//   %%                             (record terminator)
//
// Example:
//   @ example.com
//   domain\tDomain Name: EXAMPLE.COM
//   -\t
//   registrant/name\tRegistrant Name: John Smith
//   %%
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "crf/sequence.h"
#include "text/tokenizer.h"
#include "whois/record.h"

namespace whoiscrf::whois {

// Serializes labeled records to the text format above.
void WriteLabeledRecords(std::ostream& os,
                         const std::vector<LabeledRecord>& records);
void WriteLabeledRecordsFile(const std::string& path,
                             const std::vector<LabeledRecord>& records);

// Parses the text format; throws std::runtime_error on malformed input.
std::vector<LabeledRecord> ReadLabeledRecords(std::istream& is);
std::vector<LabeledRecord> ReadLabeledRecordsFile(const std::string& path);

// --- Conversion to CRF instances ---------------------------------------

// Level-1 instance: every labeled line of the record, with block labels.
crf::Instance ToLevel1Instance(const LabeledRecord& record,
                               const text::Tokenizer& tokenizer);

// Level-2 instance over the record's registrant block(s): only lines with
// level-1 label `registrant`, with subfield labels. Returns an instance
// with no lines if the record has no registrant block.
crf::Instance ToLevel2Instance(const LabeledRecord& record,
                               const text::Tokenizer& tokenizer);

std::vector<crf::Instance> ToLevel1Instances(
    const std::vector<LabeledRecord>& records,
    const text::Tokenizer& tokenizer);
std::vector<crf::Instance> ToLevel2Instances(
    const std::vector<LabeledRecord>& records,
    const text::Tokenizer& tokenizer);

}  // namespace whoiscrf::whois
