#include "whois/stream_checkpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "util/checkpoint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace whoiscrf::whois {

namespace {

inline constexpr char kCheckpointHeader[] = "whoiscrf.checkpoint.v1";

struct CheckpointMetrics {
  obs::Counter* checkpoints;
  obs::Counter* resume_skipped;
};

const CheckpointMetrics& GetCheckpointMetrics() {
  static const CheckpointMetrics metrics = [] {
    auto& reg = obs::Registry::Global();
    CheckpointMetrics m;
    m.checkpoints = reg.GetCounter(
        "whoiscrf_stream_checkpoints_total",
        "Durable stream checkpoints written (periodic and final)");
    m.resume_skipped = reg.GetCounter(
        "whoiscrf_stream_resume_skipped_total",
        "Input records skipped on resume because a checkpoint already "
        "covered them");
    return m;
  }();
  return metrics;
}

void AppendCursor(std::string& out, const char* key, const StoreCursor& c) {
  out += util::Format(
      "%s %llu %llu %llu %llu\n", key,
      static_cast<unsigned long long>(c.records),
      static_cast<unsigned long long>(c.shard_index),
      static_cast<unsigned long long>(c.shard_records),
      static_cast<unsigned long long>(c.shard_bytes));
}

[[noreturn]] void Malformed(const std::string& detail) {
  throw std::runtime_error("malformed stream checkpoint: " + detail);
}

uint64_t ParseU64Field(std::istringstream& line, const std::string& key) {
  uint64_t v = 0;
  if (!(line >> v)) Malformed("bad value for " + key);
  return v;
}

StoreCursor ParseCursorFields(std::istringstream& line,
                              const std::string& key) {
  StoreCursor c;
  c.records = ParseU64Field(line, key);
  c.shard_index = ParseU64Field(line, key);
  c.shard_records = ParseU64Field(line, key);
  c.shard_bytes = ParseU64Field(line, key);
  return c;
}

// Deletes every shard (sealed or in-progress) of `prefix`. Used to clear
// quarantine leftovers from a previous run that postdate the checkpoint.
void RemoveStoreShards(const std::string& prefix) {
  for (size_t s = 0;; ++s) {
    const std::string path = RecordStoreShardPath(prefix, s);
    const bool had_final = std::remove(path.c_str()) == 0;
    const bool had_tmp = std::remove((path + ".tmp").c_str()) == 0;
    if (!had_final && !had_tmp) break;
  }
}

}  // namespace

std::string StreamCheckpointPath(const std::string& store_prefix) {
  return store_prefix + ".ckpt";
}

std::string FormatStreamCheckpoint(const StreamCheckpoint& cp) {
  std::string out;
  out += kCheckpointHeader;
  out += '\n';
  out += util::Format("complete %d\n", cp.complete ? 1 : 0);
  out += util::Format("consumed %llu\n",
                      static_cast<unsigned long long>(cp.consumed));
  out += util::Format("quarantined %llu\n",
                      static_cast<unsigned long long>(cp.quarantined));
  out += "input " + cp.input_id + "\n";
  AppendCursor(out, "store", cp.store);
  AppendCursor(out, "quarantine_store", cp.quarantine);
  // The aux payload is raw bytes (it may contain newlines or look like
  // checkpoint keys), so it is length-prefixed and must be the final
  // section. Absent entirely when empty — older checkpoints stay valid.
  if (!cp.aux.empty()) {
    out += util::Format("aux %llu\n",
                        static_cast<unsigned long long>(cp.aux.size()));
    out += cp.aux;
    out += '\n';
  }
  return out;
}

StreamCheckpoint ParseStreamCheckpoint(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointHeader) {
    Malformed("missing header");
  }
  StreamCheckpoint cp;
  bool saw_store = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "complete") {
      cp.complete = ParseU64Field(fields, key) != 0;
    } else if (key == "consumed") {
      cp.consumed = ParseU64Field(fields, key);
    } else if (key == "quarantined") {
      cp.quarantined = ParseU64Field(fields, key);
    } else if (key == "input") {
      std::string rest;
      std::getline(fields, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      cp.input_id = rest;
    } else if (key == "store") {
      cp.store = ParseCursorFields(fields, key);
      saw_store = true;
    } else if (key == "quarantine_store") {
      cp.quarantine = ParseCursorFields(fields, key);
    } else if (key == "aux") {
      // Length-prefixed raw bytes; always the final section, so the
      // remaining text after this line is the payload itself.
      const uint64_t n = ParseU64Field(fields, key);
      const auto pos = static_cast<size_t>(in.tellg());
      if (pos > text.size() || text.size() - pos < n) {
        Malformed("aux payload truncated");
      }
      cp.aux = text.substr(pos, n);
      break;
    } else {
      Malformed("unknown key '" + key + "'");
    }
  }
  if (!saw_store) Malformed("missing store cursor");
  return cp;
}

void SaveStreamCheckpoint(const std::string& path,
                          const StreamCheckpoint& cp) {
  util::AtomicWriteFile(path, FormatStreamCheckpoint(cp));
}

bool LoadStreamCheckpoint(const std::string& path, StreamCheckpoint& cp) {
  std::string text;
  if (!util::ReadFileToString(path, text)) return false;
  cp = ParseStreamCheckpoint(text);
  return true;
}

std::string FormatQuarantineEntry(uint64_t index, const std::string& reason,
                                  const std::string& record) {
  // Reasons live on the header line; strip newlines so the record bytes
  // start exactly after the first '\n'.
  std::string safe_reason = reason;
  for (char& c : safe_reason) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return util::Format("q1\t%llu\t", static_cast<unsigned long long>(index)) +
         safe_reason + "\n" + record;
}

void ParseQuarantineEntry(const std::string& entry, uint64_t& index,
                          std::string& reason, std::string& record) {
  const size_t newline = entry.find('\n');
  if (entry.compare(0, 3, "q1\t") != 0 || newline == std::string::npos) {
    throw std::runtime_error("malformed quarantine entry");
  }
  const size_t tab = entry.find('\t', 3);
  if (tab == std::string::npos || tab > newline) {
    throw std::runtime_error("malformed quarantine entry header");
  }
  index = std::strtoull(entry.substr(3, tab - 3).c_str(), nullptr, 10);
  reason = entry.substr(tab + 1, newline - tab - 1);
  record = entry.substr(newline + 1);
}

CheckpointedParseResult ParseStreamToStore(
    const WhoisParser& parser, RecordSource& source,
    const std::string& store_prefix, const CheckpointedParseOptions& options,
    const std::function<void(uint64_t index, const std::string& record,
                             const ParsedWhois& parsed)>& sink) {
  const CheckpointMetrics& metrics = GetCheckpointMetrics();
  const std::string ckpt_path = StreamCheckpointPath(store_prefix);
  const std::string quarantine_prefix = store_prefix + "-quarantine";

  StreamCheckpoint cp;
  bool have_cp = false;
  if (options.resume) {
    have_cp = LoadStreamCheckpoint(ckpt_path, cp);
    if (have_cp && cp.input_id != options.input_id) {
      throw std::runtime_error(
          "stream checkpoint was written for input '" + cp.input_id +
          "' but this run reads '" + options.input_id +
          "' — refusing to resume");
    }
  } else {
    // A fresh run invalidates any previous checkpoint immediately, so a
    // crash before the first new checkpoint can't resume against it.
    std::remove(ckpt_path.c_str());
  }

  CheckpointedParseResult result;
  if (have_cp) {
    // Restore caller-derived state before any record is replayed, so the
    // sink resumes against exactly the state that matched the cursor.
    if (options.load_aux) options.load_aux(cp.aux);
    const uint64_t skipped = source.Skip(cp.consumed);
    if (skipped < cp.consumed) {
      throw std::runtime_error(util::Format(
          "stream checkpoint covers %llu records but the input ended "
          "after %llu — input changed since the checkpoint",
          static_cast<unsigned long long>(cp.consumed),
          static_cast<unsigned long long>(skipped)));
    }
    result.skipped = cp.consumed;
    metrics.resume_skipped->Inc(cp.consumed);
  }
  if (have_cp && cp.complete) {
    // The previous run finished; everything on disk is already final.
    result.quarantined = cp.quarantined;
    result.records_stored = cp.store.records;
    return result;
  }

  // The resume constructor doubles as stale-state cleanup: with a zero
  // cursor it simply deletes every shard, which is exactly what a fresh
  // run needs to guarantee byte-identical output.
  std::optional<RecordStoreWriter> writer;
  writer.emplace(store_prefix, options.store,
                 have_cp ? cp.store : StoreCursor{});

  // The quarantine store is created lazily so clean corpora leave no
  // quarantine artifacts; resume re-opens it only when the checkpoint says
  // it holds records, otherwise leftovers past the cursor are deleted.
  std::optional<RecordStoreWriter> quarantine;
  if (have_cp && cp.quarantine.records > 0) {
    quarantine.emplace(quarantine_prefix, options.store, cp.quarantine);
  } else {
    RemoveStoreShards(quarantine_prefix);
  }

  const uint64_t base = result.skipped;
  uint64_t consumed = base;
  uint64_t quarantined_total = have_cp ? cp.quarantined : 0;
  uint64_t since_checkpoint = 0;

  auto checkpoint_now = [&](bool complete) {
    const auto ckpt_start = std::chrono::steady_clock::now();
    // Order matters: make the store bytes durable first, then publish the
    // cursor that points at them.
    writer->Sync();
    if (quarantine) quarantine->Sync();
    StreamCheckpoint out;
    out.complete = complete;
    out.consumed = consumed;
    out.quarantined = quarantined_total;
    out.input_id = options.input_id;
    out.store = writer->cursor();
    if (quarantine) out.quarantine = quarantine->cursor();
    if (options.save_aux) out.aux = options.save_aux();
    SaveStreamCheckpoint(ckpt_path, out);
    metrics.checkpoints->Inc();
    ++result.checkpoints;
    since_checkpoint = 0;
    if (options.on_checkpoint) options.on_checkpoint(out);
    result.checkpoint_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ckpt_start)
            .count();
  };
  auto maybe_checkpoint = [&] {
    ++since_checkpoint;
    if (options.checkpoint_interval == 0) return;  // final checkpoint only
    if (since_checkpoint >= options.checkpoint_interval) checkpoint_now(false);
  };

  StreamPipelineOptions pipeline = options.pipeline;
  pipeline.on_quarantine = [&](uint64_t idx, const std::string& record,
                               const std::string& reason) {
    const uint64_t global = base + idx;
    if (!quarantine) quarantine.emplace(quarantine_prefix, options.store);
    quarantine->Append(FormatQuarantineEntry(global, reason, record));
    LOG_WARN("quarantined record %llu: %s",
             static_cast<unsigned long long>(global), reason.c_str());
    ++quarantined_total;
    consumed = global + 1;
    maybe_checkpoint();
  };

  result.stats = ParseStream(
      parser, source, pipeline,
      [&](uint64_t idx, const std::string& record, const ParsedWhois& parsed) {
        const uint64_t global = base + idx;
        writer->Append(record);
        if (sink) sink(global, record, parsed);
        consumed = global + 1;
        maybe_checkpoint();
      });

  writer->Finish();
  if (quarantine) quarantine->Finish();
  checkpoint_now(/*complete=*/true);

  result.quarantined = quarantined_total;
  result.records_stored = writer->record_count();
  return result;
}

}  // namespace whoiscrf::whois
