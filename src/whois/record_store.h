// Compact sharded binary record store: the on-disk shape of a crawled
// corpus once it leaves the %%-delimited text world. The paper's survey
// parses 102M records; at that scale the store must support (a) streaming
// scans with bounded memory and (b) random access by record index without
// reading anything but the target record — both fall out of a per-shard
// offset index.
//
// Layout (docs/formats.md "Sharded record store" is the authoritative
// spec): records are split across shard files `<prefix>-NNNNN.wrs`, each
// holding up to `records_per_shard` records:
//
//   u32  magic   0x31535257 ("WRS1")
//   u32  version 1
//   ...  records: u32 length + raw bytes, back to back
//   ...  index:   u64 file offset of each record's length word
//   u64  record count
//   u64  index offset (file offset of the first index entry)
//   u32  magic   0x31535257   (footer magic — detects truncation)
//
// Integers are little-endian. A reader seeks to the footer, loads the
// index (8 bytes per record), and can then serve Get(i) with one pread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "whois/record_stream.h"

namespace whoiscrf::whois {

inline constexpr uint32_t kRecordStoreMagic = 0x31535257;  // "WRS1"
inline constexpr uint32_t kRecordStoreVersion = 1;

struct RecordStoreOptions {
  // Shard roll-over threshold. 1<<20 records * ~1KB records ≈ 1GB shards
  // at census scale; tests use tiny values to exercise multi-shard paths.
  uint64_t records_per_shard = uint64_t{1} << 20;
};

// A writer's durable position: everything a crashed run needs to reopen
// its store and continue producing byte-identical shards. Serialized into
// the stream checkpoint (docs/formats.md "Stream checkpoint").
struct StoreCursor {
  uint64_t records = 0;       // records appended across all shards
  uint64_t shard_index = 0;   // shard the cursor points into
  uint64_t shard_records = 0; // records already in that shard
  uint64_t shard_bytes = 0;   // bytes written to that shard (incl. header)
};

// Appends records into `<prefix>-NNNNN.wrs` shards. Not thread-safe; one
// writer per prefix. Finish() (or the destructor) seals the last shard.
//
// Crash safety: a shard is written as `<path>.tmp` and renamed to its
// final `.wrs` name only after the index + footer are written and
// fsync'd, so a final shard file is always complete — a crash mid-write
// or mid-finalize leaves only a `.tmp`, which readers never discover.
class RecordStoreWriter {
 public:
  explicit RecordStoreWriter(std::string prefix,
                             RecordStoreOptions options = {});
  // Resumes a previous writer at `resume_from` (a cursor captured after
  // Sync()): re-opens that shard (un-sealing it if a crash-raced seal
  // already renamed it), truncates it to the cursor's byte offset,
  // rebuilds the in-memory index by scanning the length prefixes, and
  // removes any later shards left by work past the cursor. Appending the
  // same records afterwards reproduces the uninterrupted store byte for
  // byte. Throws std::runtime_error when the on-disk state cannot be
  // reconciled with the cursor.
  RecordStoreWriter(std::string prefix, RecordStoreOptions options,
                    const StoreCursor& resume_from);
  ~RecordStoreWriter();

  RecordStoreWriter(const RecordStoreWriter&) = delete;
  RecordStoreWriter& operator=(const RecordStoreWriter&) = delete;

  void Append(std::string_view record);
  // Writes the current shard's index + footer, fsyncs, and renames it to
  // its final name. Idempotent.
  void Finish();

  // Flushes and fsyncs the open shard so every record appended so far is
  // durable at cursor(). No-op when no shard is open.
  void Sync();

  // The current durable-resume position. Capture only after Sync() (or
  // Finish()): the cursor is meaningful iff the bytes behind it are on
  // disk.
  StoreCursor cursor() const;

  uint64_t record_count() const { return total_records_; }
  size_t shard_count() const { return shard_index_; }

 private:
  void OpenShard();
  void SealShard();
  void ResumeShard(const StoreCursor& resume_from);

  std::string prefix_;
  RecordStoreOptions options_;
  std::FILE* file_ = nullptr;
  size_t shard_index_ = 0;       // shards opened so far
  uint64_t total_records_ = 0;
  std::vector<uint64_t> offsets_;  // current shard's index
  uint64_t shard_bytes_ = 0;
};

// Random-access + streaming reader over a sharded store. Shard files are
// mmap'ed (falling back to pread) so Get touches only the pages of the
// requested record. Thread-safe for concurrent Get calls.
class RecordStoreReader {
 public:
  // Discovers `<prefix>-00000.wrs`, `<prefix>-00001.wrs`, ... until the
  // first missing shard. Throws std::runtime_error on missing/corrupt
  // stores.
  explicit RecordStoreReader(const std::string& prefix);
  ~RecordStoreReader();

  RecordStoreReader(const RecordStoreReader&) = delete;
  RecordStoreReader& operator=(const RecordStoreReader&) = delete;

  uint64_t size() const { return total_records_; }
  size_t shard_count() const { return shards_.size(); }

  // Fetches record `index` (global, 0-based). Throws std::out_of_range.
  std::string Get(uint64_t index) const;

 private:
  struct Shard {
    int fd = -1;
    const char* map = nullptr;  // non-null iff mmap'ed
    size_t file_size = 0;
    uint64_t first_record = 0;  // global index of this shard's record 0
    std::vector<uint64_t> offsets;
  };

  void ReadBytes(const Shard& shard, uint64_t offset, char* out,
                 size_t n) const;

  std::vector<Shard> shards_;
  uint64_t total_records_ = 0;
};

// Sequential RecordSource over a store: shards are scanned in order with
// bounded memory (one record materialized at a time).
class StoreRecordSource : public RecordSource {
 public:
  explicit StoreRecordSource(const RecordStoreReader& reader)
      : reader_(reader) {}
  bool Next(std::string& record) override {
    if (pos_ >= reader_.size()) return false;
    record = reader_.Get(pos_++);
    return true;
  }
  // Stores are indexed, so a resume skip is a cursor move, not a scan.
  uint64_t Skip(uint64_t n) override {
    const uint64_t skip = std::min(n, reader_.size() - pos_);
    pos_ += skip;
    return skip;
  }

 private:
  const RecordStoreReader& reader_;
  uint64_t pos_ = 0;
};

// Shard file name for `prefix` and a shard index: `<prefix>-NNNNN.wrs`.
std::string RecordStoreShardPath(const std::string& prefix, size_t shard);

}  // namespace whoiscrf::whois
