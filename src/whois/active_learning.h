// Active learning on top of the adaptation workflow (§5.3).
//
// The paper's maintenance loop is: notice records the parser gets wrong,
// label them, retrain. The missing piece for production is *finding* those
// records among millions without ground truth. The CRF gives it to us for
// free: the normalized log-probability of the Viterbi labeling is a
// calibrated confidence, and unfamiliar formats score conspicuously low.
// SelectForLabeling ranks a pool of unlabeled records by that confidence;
// ActiveAdapt runs the full loop — select, label (via an oracle), Adapt —
// until the pool looks familiar or the labeling budget is spent.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "whois/whois_parser.h"

namespace whoiscrf::whois {

struct ScoredRecord {
  size_t index = 0;        // into the unlabeled pool
  double confidence = 0.0; // per-line normalized log-probability (<= 0)
};

// Scores every record in the pool and returns the `k` least confident,
// ascending (most suspicious first).
std::vector<ScoredRecord> SelectForLabeling(
    const WhoisParser& parser, const std::vector<std::string>& pool,
    size_t k);

struct ActiveAdaptOptions {
  size_t batch_size = 4;     // records labeled per round
  size_t max_rounds = 8;
  // Stop early once the least confident record in the pool clears this
  // per-line log-probability (e.g. -0.01 ~ 99% sequence confidence).
  double stop_confidence = -0.01;
};

struct ActiveAdaptRound {
  size_t round = 0;
  size_t labeled_so_far = 0;
  double worst_confidence = 0.0;  // before this round's labeling
};

struct ActiveAdaptResult {
  std::optional<WhoisParser> parser;  // final adapted parser
  std::vector<ActiveAdaptRound> rounds;
  size_t total_labeled = 0;
};

// The labeling oracle: given a pool index, returns the ground-truth labeled
// record (in production: a human annotator; in tests: the generator).
using LabelOracle = std::function<LabeledRecord(size_t pool_index)>;

// Runs the select -> label -> Adapt loop. `base_training` is the existing
// training set; newly labeled records are appended to it for each Adapt.
ActiveAdaptResult ActiveAdapt(const WhoisParser& base,
                              std::vector<LabeledRecord> base_training,
                              const std::vector<std::string>& pool,
                              const LabelOracle& oracle,
                              const ActiveAdaptOptions& options = {});

}  // namespace whoiscrf::whois
