// The two label spaces of the paper's two-level parsing strategy (§3.2).
//
// Level 1 segments a record into six blocks of information; level 2 refines
// lines inside `registrant` blocks into twelve contact subfields.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace whoiscrf::whois {

// First-level CRF state space (§3.2): blocks of information.
enum class Level1Label {
  kRegistrar = 0,  // registrar name, URL, ID, referral WHOIS server
  kDomain = 1,     // domain name, name servers, status, DNSSEC
  kDate = 2,       // created / updated / expiration dates
  kRegistrant = 3, // registrant contact block
  kOther = 4,      // admin / billing / tech contacts
  kNull = 5,       // boilerplate and legalese
};
inline constexpr int kNumLevel1Labels = 6;

// Second-level CRF state space (§3.2): registrant subfields.
enum class Level2Label {
  kName = 0,
  kId = 1,
  kOrg = 2,
  kStreet = 3,
  kCity = 4,
  kState = 5,
  kPostcode = 6,
  kCountry = 7,
  kPhone = 8,
  kFax = 9,
  kEmail = 10,
  kOther = 11,
};
inline constexpr int kNumLevel2Labels = 12;

std::string_view Level1Name(Level1Label label);
std::string_view Level2Name(Level2Label label);

std::optional<Level1Label> Level1FromName(std::string_view name);
std::optional<Level2Label> Level2FromName(std::string_view name);

// Label-name vectors in enum order, for constructing CRFs.
std::vector<std::string> Level1Names();
std::vector<std::string> Level2Names();

}  // namespace whoiscrf::whois
