#include "whois/labels.h"

namespace whoiscrf::whois {

namespace {
constexpr std::string_view kLevel1Names[kNumLevel1Labels] = {
    "registrar", "domain", "date", "registrant", "other", "null"};
constexpr std::string_view kLevel2Names[kNumLevel2Labels] = {
    "name", "id",      "org",     "street", "city",  "state",
    "postcode", "country", "phone", "fax",    "email", "other"};
}  // namespace

std::string_view Level1Name(Level1Label label) {
  return kLevel1Names[static_cast<int>(label)];
}

std::string_view Level2Name(Level2Label label) {
  return kLevel2Names[static_cast<int>(label)];
}

std::optional<Level1Label> Level1FromName(std::string_view name) {
  for (int i = 0; i < kNumLevel1Labels; ++i) {
    if (kLevel1Names[i] == name) return static_cast<Level1Label>(i);
  }
  return std::nullopt;
}

std::optional<Level2Label> Level2FromName(std::string_view name) {
  for (int i = 0; i < kNumLevel2Labels; ++i) {
    if (kLevel2Names[i] == name) return static_cast<Level2Label>(i);
  }
  return std::nullopt;
}

std::vector<std::string> Level1Names() {
  std::vector<std::string> out;
  out.reserve(kNumLevel1Labels);
  for (auto name : kLevel1Names) out.emplace_back(name);
  return out;
}

std::vector<std::string> Level2Names() {
  std::vector<std::string> out;
  out.reserve(kNumLevel2Labels);
  for (auto name : kLevel2Names) out.emplace_back(name);
  return out;
}

}  // namespace whoiscrf::whois
