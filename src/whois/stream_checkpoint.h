// Durable checkpoint/resume for `parse --stream --store-out`: the glue
// between ParseStream (in-order sink), RecordStoreWriter (durable store
// cursors), and util::AtomicWriteFile (atomic snapshots).
//
// Contract: a checkpoint is written only after both the main store and the
// quarantine store have been fsync'd up to the recorded cursors, so a
// checkpoint never references bytes that could be lost in a crash. Resume
// truncates each store back to its cursor and replays the input from the
// recorded consumed count — an interrupted-then-resumed run produces a
// store byte-identical to an uninterrupted one (docs/formats.md "Stream
// checkpoint").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "whois/record_store.h"
#include "whois/stream_pipeline.h"

namespace whoiscrf::whois {

// Parsed form of `<store_prefix>.ckpt`. Plain-text, one key per line; see
// docs/formats.md for the serialization.
struct StreamCheckpoint {
  bool complete = false;    // the run finished; resume is a no-op
  uint64_t consumed = 0;    // input records fully accounted for (sunk or
                            // quarantined), a prefix of the input order
  uint64_t quarantined = 0; // quarantine entries among `consumed`
  std::string input_id;     // identity of the input; mismatch aborts resume
  StoreCursor store;        // main store position at `consumed`
  StoreCursor quarantine;   // quarantine store position at `consumed`
  // Opaque caller state snapshot (arbitrary bytes), captured at the same
  // `consumed` cursor via CheckpointedParseOptions::save_aux. Riding
  // inside the atomically-replaced checkpoint file is what keeps derived
  // state (e.g. a scale run's survey accumulator) consistent with the
  // cursor: there is no crash window where one is newer than the other.
  std::string aux;
};

// Checkpoint file path for a store prefix: `<prefix>.ckpt`.
std::string StreamCheckpointPath(const std::string& store_prefix);

// Serialization used by SaveStreamCheckpoint / LoadStreamCheckpoint;
// exposed for tests.
std::string FormatStreamCheckpoint(const StreamCheckpoint& cp);
StreamCheckpoint ParseStreamCheckpoint(const std::string& text);

// Atomically replaces the checkpoint file (write + fsync + rename).
void SaveStreamCheckpoint(const std::string& path, const StreamCheckpoint& cp);
// Returns false when no checkpoint exists; throws on a malformed one.
bool LoadStreamCheckpoint(const std::string& path, StreamCheckpoint& cp);

// Quarantine store entry: a small header line with the record's global
// input index and the error reason, followed by the raw record bytes.
// Keeping the reason inside the entry means the quarantine store needs no
// sidecar file with its own crash-safety story.
std::string FormatQuarantineEntry(uint64_t index, const std::string& reason,
                                  const std::string& record);
// Inverse of FormatQuarantineEntry. Throws std::runtime_error on a
// malformed entry.
void ParseQuarantineEntry(const std::string& entry, uint64_t& index,
                          std::string& reason, std::string& record);

struct CheckpointedParseOptions {
  StreamPipelineOptions pipeline;   // on_quarantine is installed internally
  RecordStoreOptions store;
  // Records between checkpoints. Smaller = less work redone after a
  // crash, more fsync traffic (bench: bench_stream_pipeline measures the
  // overhead).
  uint64_t checkpoint_interval = 4096;
  // Resume from `<prefix>.ckpt` when it exists; without a checkpoint a
  // resume run behaves like a fresh one.
  bool resume = false;
  // Identity of the input corpus (e.g. "file:<path>"); stored in the
  // checkpoint and verified on resume so a checkpoint can't silently
  // replay against a different input.
  std::string input_id;
  // Snapshot of caller-derived state, taken at every checkpoint (after
  // the sink has seen every record up to the cursor) and stored in the
  // checkpoint's aux payload. Paired with `load_aux`, which on resume
  // receives the payload of the loaded checkpoint (possibly empty) before
  // any record is replayed. Both optional; see StreamCheckpoint::aux.
  std::function<std::string()> save_aux;
  std::function<void(const std::string& aux)> load_aux;
  // Observes every durable checkpoint just after it is written (periodic
  // and final) — e.g. to journal run progress. Runs on the calling
  // thread; a throw aborts the run like a sink throw.
  std::function<void(const StreamCheckpoint& cp)> on_checkpoint;
};

struct CheckpointedParseResult {
  StreamPipelineStats stats;     // this run only (post-skip records)
  uint64_t skipped = 0;          // input records skipped via the checkpoint
  uint64_t quarantined = 0;      // total across interrupted + this run
  uint64_t records_stored = 0;   // total records in the finished store
  uint64_t checkpoints = 0;      // checkpoints written by this run
  // Wall time spent inside checkpoint writes (store fsyncs + aux snapshot
  // + atomic checkpoint replace); the run's durability overhead.
  double checkpoint_seconds = 0.0;
};

// Streams `source` through ParseStream into a record store at
// `store_prefix`, quarantining poison records into
// `<store_prefix>-quarantine` and checkpointing durably every
// `checkpoint_interval` records. `sink` (optional) observes each stored
// record after it is appended, with its global input index. The final
// checkpoint is written with complete=1 and kept, so resuming a finished
// run is an idempotent no-op.
CheckpointedParseResult ParseStreamToStore(
    const WhoisParser& parser, RecordSource& source,
    const std::string& store_prefix, const CheckpointedParseOptions& options,
    const std::function<void(uint64_t index, const std::string& record,
                             const ParsedWhois& parsed)>& sink = nullptr);

}  // namespace whoiscrf::whois
