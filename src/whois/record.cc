#include "whois/record.h"

#include <cctype>
#include <stdexcept>

#include "text/line_splitter.h"
#include "util/string_util.h"

namespace whoiscrf::whois {

void LabeledRecord::Validate() const {
  const auto lines = text::SplitRecord(text);
  if (lines.size() != labels.size()) {
    throw std::invalid_argument(util::Format(
        "LabeledRecord(%s): %zu labeled lines but %zu labels", domain.c_str(),
        lines.size(), labels.size()));
  }
  if (sub_labels.size() != labels.size()) {
    throw std::invalid_argument(util::Format(
        "LabeledRecord(%s): %zu labels but %zu sub_labels", domain.c_str(),
        labels.size(), sub_labels.size()));
  }
}

bool Contact::Empty() const {
  return name.empty() && id.empty() && org.empty() && street.empty() &&
         city.empty() && state.empty() && postcode.empty() &&
         country.empty() && phone.empty() && fax.empty() && email.empty() &&
         other.empty();
}

std::optional<int> ExtractYear(std::string_view date) {
  // Scan for a standalone 4-digit group starting with 19 or 20.
  for (size_t i = 0; i + 4 <= date.size(); ++i) {
    const bool left_ok =
        i == 0 || !std::isdigit(static_cast<unsigned char>(date[i - 1]));
    const bool right_ok =
        i + 4 == date.size() ||
        !std::isdigit(static_cast<unsigned char>(date[i + 4]));
    if (!left_ok || !right_ok) continue;
    std::string_view group = date.substr(i, 4);
    if (!util::IsDigits(group)) continue;
    if (group.substr(0, 2) != "19" && group.substr(0, 2) != "20") continue;
    return (group[0] - '0') * 1000 + (group[1] - '0') * 100 +
           (group[2] - '0') * 10 + (group[3] - '0');
  }
  return std::nullopt;
}

}  // namespace whoiscrf::whois
