// Incremental scanner for %%-delimited WHOIS record files — the single
// framing authority for the repo (docs/formats.md "Raw-record pool
// format"). cli::ReadRawRecords, the training-data loader, and the
// streaming parse pipeline all delegate here, so framing semantics cannot
// drift between them.
//
// Semantics (matching the original in-memory splitter byte for byte):
//   * lines end at "\n", "\r\n", or bare "\r";
//   * a line whose trimmed content is exactly "%%" terminates a record;
//   * a record's text is its lines joined with '\n' (LF-normalized, each
//     line newline-terminated, including an unterminated final line);
//   * records with empty bodies (consecutive separators) are skipped;
//   * a trailing record with no closing %% is emitted with
//     `terminated == false`, and only if it contains an alphanumeric
//     character (so trailing blank lines never produce a ghost record).
//
// The scanner holds one input chunk plus the current record at a time, so
// memory stays O(chunk + record) however large the corpus is, and a record
// may straddle any number of chunk boundaries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/chunk_reader.h"

namespace whoiscrf::whois {

// One record scanned out of a byte stream.
struct StreamedRecord {
  std::string text;        // LF-normalized body, every line '\n'-terminated
  uint64_t index = 0;      // 0-based index among emitted records
  size_t first_line = 0;   // 1-based physical line number of the first line
  bool terminated = true;  // false only for a final record with no %%
};

class RecordStreamReader {
 public:
  explicit RecordStreamReader(util::ByteSource& source);

  // Scans forward to the next record. Returns false at end of input.
  // `out.text` is overwritten (capacity reused across calls).
  bool Next(StreamedRecord& out);

 private:
  // Handles one complete physical line; true if it completed a record.
  bool ConsumeLine(std::string_view line, StreamedRecord& out);
  bool EmitBody(StreamedRecord& out, bool terminated);

  util::ByteSource& source_;
  std::string_view chunk_;
  size_t pos_ = 0;           // scan cursor within chunk_
  std::string partial_;      // line fragment carried across chunks
  std::string body_;         // current record body
  bool skip_lf_ = false;     // last chunk ended in '\r': swallow a '\n'
  bool eof_ = false;
  size_t line_no_ = 0;       // physical lines consumed so far
  size_t body_first_line_ = 0;
  uint64_t emitted_ = 0;
};

// Pull interface the streaming pipeline consumes: anything that can hand
// out records one at a time.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  // Fills `record` with the next record's text; false at end of input.
  virtual bool Next(std::string& record) = 0;

  // Advances past up to `n` records, returning how many were actually
  // skipped (< n only at end of input). The default scans via Next();
  // seekable sources (stores, generators) override with an O(1) cursor
  // move, which is what makes resuming a checkpointed run over a 100M-
  // record corpus instant instead of a full re-read.
  virtual uint64_t Skip(uint64_t n) {
    std::string scratch;
    uint64_t skipped = 0;
    while (skipped < n && Next(scratch)) ++skipped;
    return skipped;
  }
};

// RecordSource over a %%-delimited byte stream.
class TextRecordSource : public RecordSource {
 public:
  explicit TextRecordSource(util::ByteSource& source) : reader_(source) {}
  bool Next(std::string& record) override;

 private:
  RecordStreamReader reader_;
  StreamedRecord scratch_;
};

// RecordSource over an in-memory list (the batch paths and tests).
class VectorRecordSource : public RecordSource {
 public:
  explicit VectorRecordSource(const std::vector<std::string>& records)
      : records_(records) {}
  bool Next(std::string& record) override {
    if (pos_ >= records_.size()) return false;
    record = records_[pos_++];
    return true;
  }
  uint64_t Skip(uint64_t n) override {
    const uint64_t skip =
        std::min<uint64_t>(n, records_.size() - pos_);
    pos_ += static_cast<size_t>(skip);
    return skip;
  }

 private:
  const std::vector<std::string>& records_;
  size_t pos_ = 0;
};

// Materializes every record of a source / a %%-delimited file ("" reads
// stdin). Throws std::runtime_error when the file cannot be opened.
std::vector<std::string> ReadAllRecords(util::ByteSource& source);
std::vector<std::string> ReadAllRecords(const std::string& path);

}  // namespace whoiscrf::whois
