#include "whois/active_learning.h"

#include <algorithm>
#include <set>

#include "crf/tagger.h"
#include "text/line_splitter.h"
#include "util/logging.h"

namespace whoiscrf::whois {

namespace {

double Confidence(const WhoisParser& parser, const std::string& text) {
  const auto lines = text::SplitRecord(text);
  if (lines.empty()) return 0.0;
  const ParsedWhois parsed = parser.Parse(text);
  return parsed.log_prob / static_cast<double>(lines.size());
}

}  // namespace

std::vector<ScoredRecord> SelectForLabeling(
    const WhoisParser& parser, const std::vector<std::string>& pool,
    size_t k) {
  std::vector<ScoredRecord> scored;
  scored.reserve(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    scored.push_back(ScoredRecord{i, Confidence(parser, pool[i])});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredRecord& a, const ScoredRecord& b) {
              if (a.confidence != b.confidence) {
                return a.confidence < b.confidence;
              }
              return a.index < b.index;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

ActiveAdaptResult ActiveAdapt(const WhoisParser& base,
                              std::vector<LabeledRecord> base_training,
                              const std::vector<std::string>& pool,
                              const LabelOracle& oracle,
                              const ActiveAdaptOptions& options) {
  ActiveAdaptResult result;
  WhoisParser current = base.Adapt(base_training);
  std::set<size_t> already_labeled;

  for (size_t round = 0; round < options.max_rounds; ++round) {
    // Score the not-yet-labeled part of the pool.
    std::vector<ScoredRecord> scored;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (already_labeled.count(i)) continue;
      scored.push_back(ScoredRecord{i, Confidence(current, pool[i])});
    }
    if (scored.empty()) break;
    std::sort(scored.begin(), scored.end(),
              [](const ScoredRecord& a, const ScoredRecord& b) {
                return a.confidence < b.confidence;
              });

    ActiveAdaptRound stats;
    stats.round = round;
    stats.labeled_so_far = already_labeled.size();
    stats.worst_confidence = scored.front().confidence;
    result.rounds.push_back(stats);

    if (scored.front().confidence >= options.stop_confidence) break;

    const size_t batch = std::min(options.batch_size, scored.size());
    for (size_t b = 0; b < batch; ++b) {
      const size_t index = scored[b].index;
      base_training.push_back(oracle(index));
      already_labeled.insert(index);
    }
    LOG_DEBUG("active-adapt round %zu: labeled %zu records "
              "(worst confidence %.4f)",
              round, batch, scored.front().confidence);
    current = current.Adapt(base_training);
  }

  result.total_labeled = already_labeled.size();
  result.parser.emplace(std::move(current));
  return result;
}

}  // namespace whoiscrf::whois
