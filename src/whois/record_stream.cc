#include "whois/record_stream.h"

#include <iostream>

#include "util/byte_scan.h"
#include "util/string_util.h"

namespace whoiscrf::whois {

namespace {

bool IsSeparator(std::string_view line) {
  // Fast reject: a "%%" frame line must contain '%'; almost no body line
  // does, so most lines skip the trim entirely.
  if (line.find('%') == std::string_view::npos) return false;
  return util::Trim(line) == "%%";
}

}  // namespace

RecordStreamReader::RecordStreamReader(util::ByteSource& source)
    : source_(source) {}

bool RecordStreamReader::EmitBody(StreamedRecord& out, bool terminated) {
  out.text.swap(body_);
  body_.clear();
  out.index = emitted_++;
  out.first_line = body_first_line_;
  out.terminated = terminated;
  return true;
}

bool RecordStreamReader::ConsumeLine(std::string_view line,
                                     StreamedRecord& out) {
  ++line_no_;
  if (IsSeparator(line)) {
    if (!body_.empty()) return EmitBody(out, /*terminated=*/true);
    return false;
  }
  if (body_.empty()) body_first_line_ = line_no_;
  body_.append(line);
  body_.push_back('\n');
  return false;
}

bool RecordStreamReader::Next(StreamedRecord& out) {
  while (!eof_) {
    while (pos_ < chunk_.size()) {
      if (skip_lf_) {
        skip_lf_ = false;
        if (chunk_[pos_] == '\n') {
          ++pos_;
          continue;
        }
      }
      const size_t nl = util::scan::FindNewline(chunk_, pos_);
      if (nl == std::string_view::npos) {
        partial_.append(chunk_, pos_, chunk_.size() - pos_);
        pos_ = chunk_.size();
        break;
      }
      // Complete line: the carried fragment plus this chunk's prefix.
      std::string_view line;
      if (partial_.empty()) {
        line = chunk_.substr(pos_, nl - pos_);
      } else {
        partial_.append(chunk_, pos_, nl - pos_);
        line = partial_;
      }
      if (chunk_[nl] == '\r') {
        if (nl + 1 < chunk_.size()) {
          pos_ = nl + (chunk_[nl + 1] == '\n' ? 2 : 1);
        } else {
          pos_ = nl + 1;
          skip_lf_ = true;  // a following '\n' may open the next chunk
        }
      } else {
        pos_ = nl + 1;
      }
      const bool complete = ConsumeLine(line, out);
      partial_.clear();
      if (complete) return true;
    }
    chunk_ = source_.Next();
    pos_ = 0;
    if (chunk_.empty()) {
      eof_ = true;
      // A final line without a trailing newline still counts.
      if (!partial_.empty()) {
        const bool complete = ConsumeLine(partial_, out);
        partial_.clear();
        if (complete) return true;
      }
      if (util::HasAlnum(body_)) return EmitBody(out, /*terminated=*/false);
      body_.clear();
      return false;
    }
  }
  return false;
}

bool TextRecordSource::Next(std::string& record) {
  if (!reader_.Next(scratch_)) return false;
  record.swap(scratch_.text);
  return true;
}

std::vector<std::string> ReadAllRecords(util::ByteSource& source) {
  std::vector<std::string> records;
  RecordStreamReader reader(source);
  StreamedRecord rec;
  while (reader.Next(rec)) records.push_back(std::move(rec.text));
  return records;
}

std::vector<std::string> ReadAllRecords(const std::string& path) {
  if (path.empty()) {
    util::StreamByteSource source(std::cin);
    return ReadAllRecords(source);
  }
  util::FileByteSource source(path);
  return ReadAllRecords(source);
}

}  // namespace whoiscrf::whois
