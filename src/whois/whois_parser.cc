#include "whois/whois_parser.h"

#include <atomic>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "crf/inference.h"
#include "crf/viterbi.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/separator.h"
#include "text/word_classes.h"
#include "util/byte_scan.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace whoiscrf::whois {

namespace {

// Parser-level serialization header (little-endian, like CrfModel's own
// framing). Streams written before this header existed start directly with
// CrfModel's "WCRF" magic; Load detects that and falls back to default
// options, preserving compatibility with old model files.
constexpr uint32_t kParserMagic = 0x53525057;  // "WPRS"
constexpr uint32_t kParserVersion = 1;

constexpr uint32_t kTokWordClasses = 1u << 0;
constexpr uint32_t kTokLayoutMarkers = 1u << 1;
constexpr uint32_t kTokSeparatorMarkers = 1u << 2;

void WriteU32(std::ostream& os, uint32_t v) {
  unsigned char buf[4] = {
      static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
      static_cast<unsigned char>(v >> 16), static_cast<unsigned char>(v >> 24)};
  os.write(reinterpret_cast<const char*>(buf), 4);
}

uint32_t ReadU32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) throw std::runtime_error("WhoisParser::Load: truncated stream");
  return static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
         (static_cast<uint32_t>(buf[2]) << 16) |
         (static_cast<uint32_t>(buf[3]) << 24);
}

void WriteF64(std::ostream& os, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU32(os, static_cast<uint32_t>(bits));
  WriteU32(os, static_cast<uint32_t>(bits >> 32));
}

double ReadF64(std::istream& is) {
  const uint64_t lo = ReadU32(is);
  const uint64_t hi = ReadU32(is);
  const uint64_t bits = lo | (hi << 32);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Title/value split with fallback: lines without a separator are all value.
struct TitleValue {
  std::string title;  // lower-cased
  std::string value;
};

// Allocation-free when `title`/`value` already have capacity (the line
// cache reuses its entries' strings across evictions).
void SplitTitleValueInto(const text::Line& line, std::string& title,
                         std::string& value) {
  const auto sep = text::FindSeparator(line.text);
  if (sep.has_value()) {
    title.assign(sep->title);
    util::scan::AsciiLower(title.data(), title.size(), title.data());
    value.assign(sep->value);
  } else {
    title.clear();
    value.assign(util::Trim(line.text));
  }
}

TitleValue SplitTitleValue(const text::Line& line) {
  TitleValue tv;
  SplitTitleValueInto(line, tv.title, tv.value);
  return tv;
}

void AssignFirst(std::string& field, const std::string& value) {
  if (field.empty() && !value.empty()) field = value;
}

uint64_t NextParserId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Cache key: the layout flags + text a Line contributes to feature
// extraction (Tokenizer::ExtractTo reads nothing else), so equal keys
// guarantee identical attribute streams.
void LineCacheKey(const text::Line& line, std::string& key) {
  char flags = 0;
  if (line.preceded_by_blank) flags |= 1;
  if (line.shift_left) flags |= 2;
  if (line.shift_right) flags |= 4;
  if (line.starts_with_symbol) flags |= 8;
  if (line.has_tab) flags |= 16;
  key.assign(1, flags);
  key.append(line.text);
}

// Slot count of the direct-mapped line cache (power of two; the probe
// masks the key hash). Sized well above the few thousand distinct lines a
// registrar template corpus produces, so conflict evictions of hot lines
// are rare; total memory stays bounded at slots x working line size.
constexpr size_t kLineCacheSlots = 1 << 15;

// Slot count of the direct-mapped word cache (power of two). WHOIS word
// vocabulary is Zipfian; hot words re-enter immediately after a conflict
// eviction, and replay copies everything out during the probe, so no
// pinning is needed.
constexpr size_t kWordCacheSlots = 1 << 15;

}  // namespace

namespace {

// Interns one line's attribute stream against BOTH levels with a single
// probe of the parser's merged attr table per attribute. Produces exactly
// what one InternSink per model would (same ids in the same order, same
// first-occurrence dedup, same trans_slots), because the table is the
// merge of both vocabularies and slot maps.
template <typename AttrMap>
class DualInternSink final : public text::AttrSink {
 public:
  // `packed` is the parser's merged unary table (L1+L2 doubles per
  // attribute): Add() folds the unary score of every accepted attribute
  // into the line's accumulators as it interns, in the exact order
  // CrfModel::UnaryScores would have summed them — which makes a separate
  // scoring pass over the compiled items redundant, and streams one
  // cache-dense row per attribute instead of gathering from two weight
  // arrays.
  DualInternSink(const AttrMap& map, std::vector<WordSlot>& words,
                 const double* packed, size_t num_labels1, size_t num_labels2)
      : map_(map),
        words_(words.data()),
        packed_(packed),
        L1_(num_labels1),
        L2_(num_labels2) {}

  void BeginLine(crf::CompiledItem& item1, crf::CompiledItem& item2,
                 double* unary1, double* unary2) {
    item1_ = &item1;
    item2_ = &item2;
    unary1_ = unary1;
    unary2_ = unary2;
    item1.attrs.clear();
    item1.trans_slots.clear();
    item2.attrs.clear();
    item2.trans_slots.clear();
    std::fill_n(unary1, L1_, 0.0);
    std::fill_n(unary2, L2_, 0.0);
  }

  // Word memoization (see AttrSink::OnWord). On a hit, replays the word's
  // interned attributes directly — Add() re-runs first-occurrence dedup
  // against the current items, so a replay composes with whatever the line
  // emitted before it exactly like a live emission would. On a miss,
  // records the OnAttr stream until EndWord.
  int OnWord(std::string_view raw_word, bool title, bool transition) override {
    rec_mapped_ = -1;
    if (raw_word.size() + 1 > WordSlot::kKeyMax) return -1;  // uncacheable
    key_[0] = title ? 'T' : 'V';
    std::memcpy(key_ + 1, raw_word.data(), raw_word.size());
    key_len_ = static_cast<uint8_t>(raw_word.size() + 1);
    hash_ = TransparentStringHash{}(std::string_view(key_, key_len_));
    slot_ = &words_[hash_ & (kWordCacheSlots - 1)];
    if (slot_->hash == hash_ && slot_->len == key_len_ &&
        std::memcmp(slot_->key, key_, key_len_) == 0) {
      for (size_t i = 0; i < slot_->n_mapped; ++i) {
        const WordMappedAttr& m = slot_->mapped[i];
        // Only the word attribute itself is transition-eligible, and only
        // when the caller's context (first title word) says so now.
        const bool trans = transition && m.is_word_attr;
        const double* row = packed_ + m.packed;
        if (m.id1 >= 0) Add(*item1_, m.id1, m.slot1, trans, row, L1_, unary1_);
        if (m.id2 >= 0) {
          Add(*item2_, m.id2, m.slot2, trans, row + L1_, L2_, unary2_);
        }
      }
      return slot_->emit_count;
    }
    rec_mapped_ = 0;
    rec_emit_ = 0;
    return -1;
  }

  void EndWord() override {
    if (rec_mapped_ < 0) return;  // uncacheable or mapped-array overflow
    // Commit the staged recording only now: an aborted recording must not
    // disturb the (unrelated) entry currently resident in the slot.
    slot_->hash = hash_;
    slot_->len = key_len_;
    slot_->emit_count = static_cast<uint8_t>(rec_emit_);
    slot_->n_mapped = static_cast<uint8_t>(rec_mapped_);
    std::memcpy(slot_->key, key_, key_len_);
    std::memcpy(slot_->mapped, rec_staging_,
                static_cast<size_t>(rec_mapped_) * sizeof(WordMappedAttr));
    rec_mapped_ = -1;
  }

  void OnAttr(std::string_view attr, bool transition) override {
    const auto it = map_.find(attr);
    if (rec_mapped_ >= 0) {
      // The first emission inside a word window is the word attribute.
      const bool is_word = rec_emit_ == 0;
      ++rec_emit_;
      if (it != map_.end()) {
        const auto& d = it->second;
        if (rec_mapped_ < static_cast<int>(WordSlot::kMappedMax)) {
          rec_staging_[rec_mapped_++] = {d.id1,    d.slot1, d.id2,
                                         d.slot2,  d.packed, is_word};
        } else {
          rec_mapped_ = -1;  // too many attrs to memoize; leave slot as-is
        }
      }
    }
    if (it == map_.end()) return;
    const auto& d = it->second;
    const double* row = packed_ + d.packed;
    if (d.id1 >= 0) Add(*item1_, d.id1, d.slot1, transition, row, L1_, unary1_);
    if (d.id2 >= 0) {
      Add(*item2_, d.id2, d.slot2, transition, row + L1_, L2_, unary2_);
    }
  }

 private:
  static void Add(crf::CompiledItem& item, int id, int slot, bool transition,
                  const double* row, size_t L, double* unary) {
    for (int existing : item.attrs) {
      if (existing == id) return;  // first occurrence wins
    }
    item.attrs.push_back(id);
    if (transition && slot >= 0) item.trans_slots.push_back(slot);
    for (size_t j = 0; j < L; ++j) unary[j] += row[j];
  }

  const AttrMap& map_;
  WordSlot* words_;
  const double* packed_;
  size_t L1_, L2_;
  crf::CompiledItem* item1_ = nullptr;
  crf::CompiledItem* item2_ = nullptr;
  double* unary1_ = nullptr;
  double* unary2_ = nullptr;
  WordSlot* slot_ = nullptr;
  uint64_t hash_ = 0;
  uint8_t key_len_ = 0;
  char key_[WordSlot::kKeyMax];
  int rec_mapped_ = -1;  // -1: not recording; else #mapped attrs recorded
  uint32_t rec_emit_ = 0;
  WordMappedAttr rec_staging_[WordSlot::kMappedMax];
};

}  // namespace

namespace {

// Routes one subfield value into a contact struct.
void AssignContactField(Contact& c, Level2Label sub, const std::string& v) {
  switch (sub) {
    case Level2Label::kName: AssignFirst(c.name, v); break;
    case Level2Label::kId: AssignFirst(c.id, v); break;
    case Level2Label::kOrg: AssignFirst(c.org, v); break;
    case Level2Label::kStreet: c.street.push_back(v); break;
    case Level2Label::kCity: AssignFirst(c.city, v); break;
    case Level2Label::kState: AssignFirst(c.state, v); break;
    case Level2Label::kPostcode: AssignFirst(c.postcode, v); break;
    case Level2Label::kCountry: AssignFirst(c.country, v); break;
    case Level2Label::kPhone: AssignFirst(c.phone, v); break;
    case Level2Label::kFax: AssignFirst(c.fax, v); break;
    case Level2Label::kEmail: AssignFirst(c.email, v); break;
    case Level2Label::kOther: c.other.push_back(v); break;
  }
}

}  // namespace

namespace {

// Route targets per level-1 label family; value 0 of each enum is "no
// action" (LineRoutePlan's default). The plan is resolved from the
// (lower-cased title, value) pair alone, so it can be computed once per
// distinct line and cached alongside the title/value split.
enum RegistrarRoute : uint8_t {
  kRegNone = 0,
  kRegWhoisServer,
  kRegUrl,
  kRegName,
  kRegNameFallback,  // untitled line: registrar name if none seen yet
};
enum DomainRoute : uint8_t {
  kDomNone = 0,
  kDomName,
  kDomNameServer,
  kDomStatus,
  kDomNameFallback,  // untitled domain-shaped value
};
enum DateRoute : uint8_t {
  kDateNone = 0,
  kDateCreated,
  kDateUpdated,
  kDateExpires,
};

// Letter-presence bitmask: a keyword can only be a substring of `s` if
// every letter it uses appears in `s`, so one pass over the (lower-cased)
// title prunes nearly all of the keyword scans below. With a literal
// keyword the mask computation constant-folds.
uint32_t LetterMask(std::string_view s) {
  uint32_t m = 0;
  for (char c : s) {
    if (c >= 'a' && c <= 'z') m |= 1u << (c - 'a');
  }
  return m;
}

inline bool HasKeyword(const std::string& title, uint32_t title_mask,
                       const char* keyword) {
  const uint32_t needed = LetterMask(keyword);
  if ((title_mask & needed) != needed) return false;
  return title.find(keyword) != std::string::npos;
}

LineRoutePlan ComputeRoutePlan(const std::string& title,
                               const std::string& value) {
  LineRoutePlan plan;
  const uint32_t tm = LetterMask(title);
  if (HasKeyword(title, tm, "whois") || HasKeyword(title, tm, "referral")) {
    plan.registrar = kRegWhoisServer;
  } else if (HasKeyword(title, tm, "url") || text::IsUrl(value)) {
    plan.registrar = kRegUrl;
  } else if (HasKeyword(title, tm, "iana")) {
    // Registrar IANA ID — numeric handle, not the registrar name.
  } else if (HasKeyword(title, tm, "registrar") ||
             HasKeyword(title, tm, "sponsor") ||
             HasKeyword(title, tm, "registered by") ||
             HasKeyword(title, tm, "registered through") ||
             HasKeyword(title, tm, "provided by") ||
             HasKeyword(title, tm, "provider")) {
    plan.registrar = kRegName;
  } else if (title.empty()) {
    plan.registrar = kRegNameFallback;
  }

  if (HasKeyword(title, tm, "domain")) {
    plan.domain = kDomName;
  } else if (HasKeyword(title, tm, "server") ||
             HasKeyword(title, tm, "nserver") ||
             HasKeyword(title, tm, "name server")) {
    plan.domain = kDomNameServer;
  } else if (HasKeyword(title, tm, "status")) {
    plan.domain = kDomStatus;
  } else if (title.empty() && text::IsDomainName(value)) {
    plan.domain = kDomNameFallback;
  }

  if (HasKeyword(title, tm, "creat") ||
      HasKeyword(title, tm, "registered on") ||
      HasKeyword(title, tm, "registration date")) {
    plan.date = kDateCreated;
  } else if (HasKeyword(title, tm, "updat") ||
             HasKeyword(title, tm, "modif") ||
             HasKeyword(title, tm, "changed")) {
    plan.date = kDateUpdated;
  } else if (HasKeyword(title, tm, "expir") ||
             HasKeyword(title, tm, "renew") ||
             HasKeyword(title, tm, "paid-till")) {
    plan.date = kDateExpires;
  }
  return plan;
}

// Routes one line's value into the ParsedWhois given its level-1 label and
// pre-resolved plan; the two indices walk the level-2 label vectors.
// Single source of truth for both ExtractFields (which computes the plan
// on the fly) and the fast path (which replays the cached plan).
void RouteLine(const LineRoutePlan& plan, const std::string& value,
               Level1Label label,
               const std::vector<Level2Label>& registrant_sub_labels,
               size_t& registrant_index,
               const std::vector<Level2Label>& other_sub_labels,
               size_t& other_index, ParsedWhois& out) {
  switch (label) {
      case Level1Label::kRegistrar: {
        switch (plan.registrar) {
          case kRegWhoisServer: AssignFirst(out.whois_server, value); break;
          case kRegUrl: AssignFirst(out.registrar_url, value); break;
          case kRegName: AssignFirst(out.registrar, value); break;
          // AssignFirst already requires out.registrar to be empty.
          case kRegNameFallback: AssignFirst(out.registrar, value); break;
          default: break;
        }
        break;
      }
      case Level1Label::kDomain: {
        switch (plan.domain) {
          case kDomName:
            AssignFirst(out.domain_name, value);
            break;
          case kDomNameServer:
            if (!value.empty()) out.name_servers.push_back(value);
            break;
          case kDomStatus:
            if (!value.empty()) out.statuses.push_back(value);
            break;
          case kDomNameFallback:
            if (out.domain_name.empty()) out.domain_name = value;
            break;
          default:
            break;
        }
        break;
      }
      case Level1Label::kDate: {
        switch (plan.date) {
          case kDateCreated: AssignFirst(out.created, value); break;
          case kDateUpdated: AssignFirst(out.updated, value); break;
          case kDateExpires: AssignFirst(out.expires, value); break;
          default: break;
        }
        break;
      }
      case Level1Label::kRegistrant: {
        const Level2Label sub =
            registrant_index < registrant_sub_labels.size()
                ? registrant_sub_labels[registrant_index]
                : Level2Label::kOther;
        ++registrant_index;
        // Block-header lines ("Registrant:" with empty value) carry no data.
        const std::string& v = value;
        if (v.empty()) break;
        AssignContactField(out.registrant, sub, v);
        break;
      }
      case Level1Label::kOther: {
        if (other_index < other_sub_labels.size() && !value.empty()) {
          AssignContactField(out.other_contact,
                             other_sub_labels[other_index], value);
        }
        ++other_index;
        break;
      }
      case Level1Label::kNull:
        break;
  }
}

}  // namespace

void ExtractFields(const std::vector<text::Line>& lines,
                   const std::vector<Level1Label>& labels,
                   const std::vector<Level2Label>& registrant_sub_labels,
                   ParsedWhois& out,
                   const std::vector<Level2Label>& other_sub_labels) {
  size_t registrant_index = 0;
  size_t other_index = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const TitleValue tv = SplitTitleValue(lines[i]);
    RouteLine(ComputeRoutePlan(tv.title, tv.value), tv.value, labels[i],
              registrant_sub_labels, registrant_index, other_sub_labels,
              other_index, out);
  }
}

void ExtractFieldsCached(const std::vector<text::Line>& lines,
                         const std::vector<Level1Label>& labels,
                         const std::vector<Level2Label>& registrant_sub_labels,
                         ParsedWhois& out, FieldRouteCache& cache) {
  static const std::vector<Level2Label> kNoOtherSubs;
  static const std::string kEmptyValue;
  size_t registrant_index = 0;
  size_t other_index = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    SplitTitleValueInto(lines[i], cache.title, cache.value);
    LineRoutePlan plan;
    if (cache.title.empty()) {
      // Untitled lines route on the value (domain/URL shape), so the plan
      // is per-line; these are the rare case in titled formats.
      plan = ComputeRoutePlan(cache.title, cache.value);
    } else {
      auto it = cache.by_title.find(cache.title);
      if (it == cache.by_title.end()) {
        it = cache.by_title
                 .emplace(cache.title,
                          ComputeRoutePlan(cache.title, kEmptyValue))
                 .first;
      }
      plan = it->second;
      // The one value-dependence a titled line has: a URL-shaped value
      // wins the registrar route unless a stronger keyword already did
      // (mirrors ComputeRoutePlan's chain, which tests IsUrl before the
      // registrar-name keywords).
      if (plan.registrar != kRegWhoisServer && plan.registrar != kRegUrl &&
          text::IsUrl(cache.value)) {
        plan.registrar = kRegUrl;
      }
    }
    RouteLine(plan, cache.value, labels[i], registrant_sub_labels,
              registrant_index, kNoOtherSubs, other_index, out);
  }
}

WhoisParser::WhoisParser(std::unique_ptr<crf::CrfModel> level1,
                         std::unique_ptr<crf::CrfModel> level2,
                         WhoisParserOptions options)
    : level1_(std::move(level1)),
      level2_(std::move(level2)),
      options_(options),
      tokenizer_(options_.tokenizer),
      instance_id_(NextParserId()) {
  // Merge the two vocabularies into the single-probe attr table. Interning
  // through it is equivalent to probing each model's vocabulary and slot
  // map separately, by construction.
  const auto merge = [this](const crf::CrfModel& model, bool second) {
    const text::Vocabulary& vocab = model.vocab();
    for (int id = 0; id < static_cast<int>(vocab.size()); ++id) {
      DualAttr& d = attr_map_[vocab.Name(id)];
      (second ? d.id2 : d.id1) = id;
      (second ? d.slot2 : d.slot1) = model.TransSlot(id);
    }
  };
  merge(*level1_, false);
  merge(*level2_, true);

  // Pack both levels' unary rows per merged attribute (see packed_unary_
  // in the header). Weights are final once the parser is constructed, so
  // the copies stay in sync with the models.
  const size_t L1 = static_cast<size_t>(level1_->num_labels());
  const size_t L2 = static_cast<size_t>(level2_->num_labels());
  packed_unary_.assign(attr_map_.size() * (L1 + L2), 0.0);
  int32_t packed_offset = 0;
  for (auto& [name, d] : attr_map_) {
    d.packed = packed_offset;
    double* row = &packed_unary_[static_cast<size_t>(packed_offset)];
    if (d.id1 >= 0) {
      std::memcpy(row, &level1_->weights()[static_cast<size_t>(d.id1) * L1],
                  L1 * sizeof(double));
    }
    if (d.id2 >= 0) {
      std::memcpy(row + L1,
                  &level2_->weights()[static_cast<size_t>(d.id2) * L2],
                  L2 * sizeof(double));
    }
    packed_offset += static_cast<int32_t>(L1 + L2);
  }

  obs::Registry& registry = obs::Registry::Global();
  metrics_.records = registry.GetCounter("whoiscrf_parse_records_total",
                                         "Records parsed on the fast path");
  metrics_.lines = registry.GetCounter("whoiscrf_parse_lines_total",
                                       "Labeled lines seen by Parse");
  metrics_.cache_hits = registry.GetCounter(
      "whoiscrf_compile_cache_hits_total",
      "Lines served from the per-workspace compile cache (tokenization, "
      "word classes, interning, and unary scoring all skipped)");
  metrics_.cache_misses = registry.GetCounter(
      "whoiscrf_compile_cache_misses_total",
      "Lines that ran the full text hot path: tokenize, classify, intern, "
      "and score");
  metrics_.workspace_cold = registry.GetCounter(
      "whoiscrf_parse_workspace_cold_total",
      "Parses that found a workspace last used by a different parser");
  metrics_.latency_us = registry.GetHistogram(
      "whoiscrf_parse_record_latency_us",
      "End-to-end latency of one fast-path Parse",
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
       100000});
}

WhoisParser WhoisParser::Train(const std::vector<LabeledRecord>& records,
                               const WhoisParserOptions& options) {
  const text::Tokenizer tokenizer(options.tokenizer);
  const crf::Trainer trainer(options.trainer);

  const auto level1_instances = ToLevel1Instances(records, tokenizer);
  auto level1 = std::make_unique<crf::CrfModel>(
      trainer.Train(Level1Names(), level1_instances));

  auto level2_instances = ToLevel2Instances(records, tokenizer);
  if (level2_instances.empty()) {
    throw std::invalid_argument(
        "WhoisParser::Train: no registrant blocks in training data");
  }
  auto level2 = std::make_unique<crf::CrfModel>(
      trainer.Train(Level2Names(), level2_instances));

  return WhoisParser(std::move(level1), std::move(level2), options);
}

WhoisParser WhoisParser::Adapt(
    const std::vector<LabeledRecord>& records) const {
  const crf::Trainer trainer(options_.trainer);
  const auto level1_instances = ToLevel1Instances(records, tokenizer_);
  auto level1 = std::make_unique<crf::CrfModel>(
      trainer.Adapt(*level1_, level1_instances));
  auto level2_instances = ToLevel2Instances(records, tokenizer_);
  auto level2 =
      level2_instances.empty()
          ? std::make_unique<crf::CrfModel>(*level2_)
          : std::make_unique<crf::CrfModel>(
                trainer.Adapt(*level2_, level2_instances));
  return WhoisParser(std::move(level1), std::move(level2), options_);
}

std::vector<Level1Label> WhoisParser::LabelLines(
    std::string_view record_text) const {
  const auto lines = text::SplitRecord(record_text);
  std::vector<text::LineAttributes> attrs;
  attrs.reserve(lines.size());
  for (const auto& line : lines) attrs.push_back(tokenizer_.Extract(line));
  const crf::Tagger tagger(*level1_);
  std::vector<Level1Label> out;
  for (int label : tagger.Tag(attrs)) {
    out.push_back(static_cast<Level1Label>(label));
  }
  return out;
}

std::vector<Level2Label> WhoisParser::LabelRegistrantLines(
    const std::vector<std::string>& raw_lines) const {
  // Re-derive layout context within the registrant block only — directly
  // over the lines we already have, without re-joining and re-splitting.
  const auto lines = text::AnnotateLines(raw_lines);
  std::vector<text::LineAttributes> attrs;
  attrs.reserve(lines.size());
  for (const auto& line : lines) attrs.push_back(tokenizer_.Extract(line));
  const crf::Tagger tagger(*level2_);
  std::vector<Level2Label> out;
  for (int label : tagger.Tag(attrs)) {
    out.push_back(static_cast<Level2Label>(label));
  }
  return out;
}

ParsedWhois WhoisParser::Parse(std::string_view record_text) const {
  // One warm workspace per thread keeps the convenience overload on the
  // fast path too.
  static thread_local ParseWorkspace tls_ws;
  return Parse(record_text, tls_ws);
}

ParsedWhois WhoisParser::Parse(std::string_view record_text,
                               ParseWorkspace& ws) const {
  const uint64_t start_us = obs::MonotonicMicros();
  obs::ScopedSpan span("whois.parse");
  ParsedWhois out;
  text::SplitRecordInto(record_text, ws.lines);
  if (ws.lines.empty()) {
    metrics_.records->Inc();
    metrics_.latency_us->Observe(
        static_cast<double>(obs::MonotonicMicros() - start_us));
    return out;
  }

  // The line cache memoizes per-line work for THIS parser's models; a
  // workspace handed over from a different parser starts cold.
  if (ws.cache_owner != instance_id_) {
    metrics_.workspace_cold->Inc();
    for (LineSlot& slot : ws.slots) slot.key.clear();  // vacate, keep buffers
    for (WordSlot& slot : ws.word_slots) slot.len = 0;
    ws.cache_owner = instance_id_;
  }
  if (ws.slots.empty()) ws.slots.resize(kLineCacheSlots);
  if (ws.word_slots.empty()) ws.word_slots.resize(kWordCacheSlots);
  const uint64_t record_seq = ++ws.record_seq;
  ws.overflow_used = 0;

  const size_t T = ws.lines.size();
  const size_t L1 = static_cast<size_t>(level1_->num_labels());
  const size_t L2 = static_cast<size_t>(level2_->num_labels());
  DualInternSink sink(attr_map_, ws.word_slots, packed_unary_.data(), L1, L2);

  // Level 1 compile + scoring: a cache hit replaces tokenization, word
  // classification, vocabulary interning, and unary/pairwise scoring with
  // one hash probe and a few row copies. Misses compile the line against
  // BOTH levels in a single tokenization pass (so level 2 below never
  // re-tokenizes) and score it once, into the entry.
  crf::CrfModel::Scores& sc = ws.crf.scores;
  ws.line_entries.assign(T, nullptr);
  sc.T = static_cast<int>(T);
  sc.L = level1_->num_labels();
  sc.unary.resize(T * L1);
  // Pairwise blocks go through the Scores row-pointer table: lines with no
  // observed-transition attributes (the common case) share the model's base
  // transition block directly — PairwiseScores would produce an exact copy
  // of it — and only lines with transition slots compute a row into the
  // `pairwise` arena. Same bits read either way, ~L*L doubles less work
  // per shared line.
  sc.pairwise.resize(T * L1 * L1);
  sc.pair_rows.assign(T, nullptr);  // row t=0 is never read
  const double* trans1 = &level1_->weights()[level1_->TransitionIndex(0, 0)];
  size_t custom_rows = 0;
  size_t cache_hits = 0;  // flushed to the registry once per record
  for (size_t t = 0; t < T; ++t) {
    LineCacheKey(ws.lines[t], ws.key);
    const uint64_t hash = TransparentStringHash{}(std::string_view(ws.key));
    LineSlot& slot = ws.slots[hash & (kLineCacheSlots - 1)];
    const LineCacheEntry* entry;
    if (slot.hash == hash && slot.key == ws.key) {
      ++cache_hits;
      slot.record_seq = record_seq;  // pin against same-record eviction
      entry = &slot.entry;
    } else {
      LineCacheEntry* e;
      if (!slot.key.empty() && slot.record_seq == record_seq) {
        // Collision with a line this record already points at: compile
        // into the (reused, pointer-stable) overflow pool instead.
        e = ws.overflow_used < ws.overflow.size()
                ? &ws.overflow[ws.overflow_used]
                : &ws.overflow.emplace_back();
        ++ws.overflow_used;
      } else {
        slot.hash = hash;
        slot.key.assign(ws.key);
        slot.record_seq = record_seq;
        e = &slot.entry;
      }
      e->unary1.resize(L1);
      e->unary2.resize(L2);
      sink.BeginLine(e->level1, e->level2, e->unary1.data(), e->unary2.data());
      tokenizer_.ExtractTo(ws.lines[t], sink, ws.crf.token_scratch);
      SplitTitleValueInto(ws.lines[t], e->title_lower, e->value);
      e->plan = ComputeRoutePlan(e->title_lower, e->value);
      entry = e;
    }
    ws.line_entries[t] = entry;
    std::memcpy(&sc.unary[t * L1], entry->unary1.data(), L1 * sizeof(double));
    if (t > 0) {
      if (entry->level1.trans_slots.empty()) {
        sc.pair_rows[t] = trans1;
      } else {
        // Recomputed from the (small, cache-hot) weight tables rather than
        // memoized: fetching a stored L*L block from the cache entry is
        // memory-bound and measurably slower.
        double* row = &sc.pairwise[custom_rows++ * L1 * L1];
        level1_->PairwiseScores(entry->level1, row);
        sc.pair_rows[t] = row;
      }
    }
  }

  // Level 1 inference: Viterbi labels plus forward-only log Z (no backward
  // pass, no marginals — Parse never reports per-line confidences). The
  // assembled Scores are bit-identical to ComputeScores on the same lines
  // (cached rows come from UnaryScores/PairwiseScores, which accumulate in
  // ComputeScores' order), and Decode/LogPartition run the same operations
  // in the same order as Tagger::TagWithConfidence's label and log-prob
  // computation — so the outputs match ParseNaive exactly.
  // Beam mode (opt-in, ws.beam_width > 0) swaps exact Viterbi for the
  // pruned DecodeBeam restricted to transitions observed in training;
  // log Z stays exact, so log_prob is still the true log-probability of
  // whichever path is returned.
  const crf::ViterbiResult& level1 =
      ws.beam_width > 0
          ? crf::DecodeBeam(ws.crf.scores, ws.beam_width, ws.crf,
                            level1_->transition_support_mask())
          : crf::Decode(ws.crf.scores, ws.crf);
  out.log_prob = level1.score - crf::LogPartition(ws.crf.scores, ws.crf);
  out.line_labels.reserve(level1.labels.size());
  for (int label : level1.labels) {
    out.line_labels.push_back(static_cast<Level1Label>(label));
  }

  // Level 2 refines both the registrant and the `other` block (admin/tech
  // contacts use the same subfield shapes, and the extracted contact
  // serves as a registrant proxy when the registrant block is missing,
  // §3.2) — straight from the cached level-2 items of the pass above.
  auto tag_block = [&](Level1Label which, std::vector<Level2Label>& subs) {
    ws.block.clear();
    for (size_t i = 0; i < T; ++i) {
      if (out.line_labels[i] == which) ws.block.push_back(ws.line_entries[i]);
    }
    subs.clear();
    if (ws.block.empty()) return;
    const size_t B = ws.block.size();
    sc.T = static_cast<int>(B);
    sc.L = level2_->num_labels();
    sc.unary.resize(B * L2);
    sc.pairwise.resize(B * L2 * L2);
    sc.pair_rows.assign(B, nullptr);  // row t=0 is never read
    const double* trans2 =
        &level2_->weights()[level2_->TransitionIndex(0, 0)];
    size_t custom2 = 0;
    for (size_t b = 0; b < B; ++b) {
      const LineCacheEntry& entry = *ws.block[b];
      std::memcpy(&sc.unary[b * L2], entry.unary2.data(),
                  L2 * sizeof(double));
      if (b > 0) {
        if (entry.level2.trans_slots.empty()) {
          sc.pair_rows[b] = trans2;
        } else {
          double* row = &sc.pairwise[custom2++ * L2 * L2];
          level2_->PairwiseScores(entry.level2, row);
          sc.pair_rows[b] = row;
        }
      }
    }
    const crf::ViterbiResult& sub =
        ws.beam_width > 0
            ? crf::DecodeBeam(ws.crf.scores, ws.beam_width, ws.crf,
                              level2_->transition_support_mask())
            : crf::Decode(ws.crf.scores, ws.crf);
    for (int label : sub.labels) {
      subs.push_back(static_cast<Level2Label>(label));
    }
  };
  tag_block(Level1Label::kRegistrant, ws.sub_labels);
  tag_block(Level1Label::kOther, ws.other_subs);

  // Field extraction from the cached title/value split — same routing as
  // ExtractFields, minus the per-line separator scan and string building.
  size_t registrant_index = 0;
  size_t other_index = 0;
  for (size_t i = 0; i < T; ++i) {
    const LineCacheEntry& entry = *ws.line_entries[i];
    RouteLine(entry.plan, entry.value, out.line_labels[i], ws.sub_labels,
              registrant_index, ws.other_subs, other_index, out);
  }

  metrics_.records->Inc();
  metrics_.lines->Inc(T);
  metrics_.cache_hits->Inc(cache_hits);
  metrics_.cache_misses->Inc(T - cache_hits);
  metrics_.latency_us->Observe(
      static_cast<double>(obs::MonotonicMicros() - start_us));
  return out;
}

std::vector<ParsedWhois> WhoisParser::ParseBatch(
    std::span<const std::string> records, util::ThreadPool& pool,
    int beam_width) const {
  obs::ScopedSpan span("whois.parse_batch");
  std::vector<ParsedWhois> out(records.size());
  if (records.empty()) return out;
  const size_t chunks = std::min(records.size(), pool.size());
  std::vector<ParseWorkspace> workspaces(chunks);
  for (ParseWorkspace& ws : workspaces) ws.beam_width = beam_width;
  pool.ParallelChunks(records.size(),
                      [&](size_t begin, size_t end, size_t chunk) {
                        obs::ScopedSpan chunk_span("whois.parse_chunk");
                        ParseWorkspace& ws = workspaces[chunk];
                        for (size_t r = begin; r < end; ++r) {
                          out[r] = Parse(records[r], ws);
                        }
                      });
  return out;
}

ParsedWhois WhoisParser::ParseNaive(std::string_view record_text) const {
  ParsedWhois out;
  const auto lines = text::SplitRecord(record_text);
  if (lines.empty()) return out;

  // ExtractClassic is the frozen pre-fast-path tokenization; together with
  // the per-record allocations and full forward–backward below, this
  // reproduces the original Parse cost model for differential benchmarks.
  std::vector<text::LineAttributes> attrs;
  attrs.reserve(lines.size());
  for (const auto& line : lines) {
    attrs.push_back(tokenizer_.ExtractClassic(line));
  }

  const crf::Tagger level1_tagger(*level1_);
  const crf::TagResult level1 = level1_tagger.TagWithConfidence(attrs);
  out.log_prob = level1.sequence_log_prob;
  out.line_labels.reserve(level1.labels.size());
  for (int label : level1.labels) {
    out.line_labels.push_back(static_cast<Level1Label>(label));
  }

  // Second level: tag the registrant block lines.
  std::vector<text::LineAttributes> registrant_attrs;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (out.line_labels[i] == Level1Label::kRegistrant) {
      registrant_attrs.push_back(attrs[i]);
    }
  }
  std::vector<Level2Label> sub_labels;
  if (!registrant_attrs.empty()) {
    const crf::Tagger level2_tagger(*level2_);
    for (int label : level2_tagger.Tag(registrant_attrs)) {
      sub_labels.push_back(static_cast<Level2Label>(label));
    }
  }

  // The level-2 model also refines `other` blocks: admin/tech contacts use
  // the same subfield shapes, and the extracted contact serves as a
  // registrant proxy when the registrant block is missing (§3.2).
  std::vector<text::LineAttributes> other_attrs;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (out.line_labels[i] == Level1Label::kOther) {
      other_attrs.push_back(attrs[i]);
    }
  }
  std::vector<Level2Label> other_subs;
  if (!other_attrs.empty()) {
    const crf::Tagger level2_tagger(*level2_);
    for (int label : level2_tagger.Tag(other_attrs)) {
      other_subs.push_back(static_cast<Level2Label>(label));
    }
  }

  ExtractFields(lines, out.line_labels, sub_labels, out, other_subs);
  return out;
}

void WhoisParser::Save(std::ostream& os) const {
  WriteU32(os, kParserMagic);
  WriteU32(os, kParserVersion);
  // Tokenizer options: a reloaded parser must tokenize exactly like the
  // one that was trained, or every attribute lookup goes wrong.
  WriteU32(os, static_cast<uint32_t>(options_.tokenizer.max_word_length));
  uint32_t tok_flags = 0;
  if (options_.tokenizer.word_classes) tok_flags |= kTokWordClasses;
  if (options_.tokenizer.layout_markers) tok_flags |= kTokLayoutMarkers;
  if (options_.tokenizer.separator_markers) tok_flags |= kTokSeparatorMarkers;
  WriteU32(os, tok_flags);
  // Trainer scalars, so Adapt() after reload regularizes and prunes the
  // same way the original training run did.
  WriteU32(os, static_cast<uint32_t>(options_.trainer.min_attr_count));
  WriteF64(os, options_.trainer.l2_sigma);
  WriteU32(os, options_.trainer.use_observed_transitions ? 1u : 0u);
  WriteU32(os, static_cast<uint32_t>(options_.trainer.algorithm));
  level1_->Save(os);
  level2_->Save(os);
}

WhoisParser WhoisParser::Load(std::istream& is) {
  WhoisParserOptions options;
  const std::istream::pos_type start = is.tellg();
  if (ReadU32(is) == kParserMagic) {
    const uint32_t version = ReadU32(is);
    if (version != kParserVersion) {
      throw std::runtime_error("WhoisParser::Load: unsupported version");
    }
    options.tokenizer.max_word_length = ReadU32(is);
    const uint32_t tok_flags = ReadU32(is);
    options.tokenizer.word_classes = (tok_flags & kTokWordClasses) != 0;
    options.tokenizer.layout_markers = (tok_flags & kTokLayoutMarkers) != 0;
    options.tokenizer.separator_markers =
        (tok_flags & kTokSeparatorMarkers) != 0;
    options.trainer.min_attr_count = ReadU32(is);
    options.trainer.l2_sigma = ReadF64(is);
    options.trainer.use_observed_transitions = ReadU32(is) != 0;
    options.trainer.algorithm = static_cast<crf::Algorithm>(ReadU32(is));
  } else {
    // Legacy stream: two bare CrfModels, written before the parser header
    // existed. Rewind and load with default options.
    is.seekg(start);
  }
  auto level1 = std::make_unique<crf::CrfModel>(crf::CrfModel::Load(is));
  auto level2 = std::make_unique<crf::CrfModel>(crf::CrfModel::Load(is));
  return WhoisParser(std::move(level1), std::move(level2), options);
}

void WhoisParser::SaveFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("WhoisParser: cannot open " + path);
  Save(os);
}

WhoisParser WhoisParser::LoadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("WhoisParser: cannot open " + path);
  return Load(is);
}

}  // namespace whoiscrf::whois
