#include "whois/whois_parser.h"

#include <fstream>
#include <stdexcept>

#include "text/separator.h"
#include "text/word_classes.h"
#include "util/string_util.h"

namespace whoiscrf::whois {

namespace {

// Title/value split with fallback: lines without a separator are all value.
struct TitleValue {
  std::string title;  // lower-cased
  std::string value;
};

TitleValue SplitTitleValue(const text::Line& line) {
  const auto sep = text::FindSeparator(line.text);
  if (sep.has_value()) {
    return {util::ToLower(sep->title), std::string(sep->value)};
  }
  return {"", std::string(util::Trim(line.text))};
}

void AssignFirst(std::string& field, const std::string& value) {
  if (field.empty() && !value.empty()) field = value;
}

}  // namespace

namespace {

// Routes one subfield value into a contact struct.
void AssignContactField(Contact& c, Level2Label sub, const std::string& v) {
  switch (sub) {
    case Level2Label::kName: AssignFirst(c.name, v); break;
    case Level2Label::kId: AssignFirst(c.id, v); break;
    case Level2Label::kOrg: AssignFirst(c.org, v); break;
    case Level2Label::kStreet: c.street.push_back(v); break;
    case Level2Label::kCity: AssignFirst(c.city, v); break;
    case Level2Label::kState: AssignFirst(c.state, v); break;
    case Level2Label::kPostcode: AssignFirst(c.postcode, v); break;
    case Level2Label::kCountry: AssignFirst(c.country, v); break;
    case Level2Label::kPhone: AssignFirst(c.phone, v); break;
    case Level2Label::kFax: AssignFirst(c.fax, v); break;
    case Level2Label::kEmail: AssignFirst(c.email, v); break;
    case Level2Label::kOther: c.other.push_back(v); break;
  }
}

}  // namespace

void ExtractFields(const std::vector<text::Line>& lines,
                   const std::vector<Level1Label>& labels,
                   const std::vector<Level2Label>& registrant_sub_labels,
                   ParsedWhois& out,
                   const std::vector<Level2Label>& other_sub_labels) {
  size_t registrant_index = 0;
  size_t other_index = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    const TitleValue tv = SplitTitleValue(lines[i]);
    switch (labels[i]) {
      case Level1Label::kRegistrar: {
        if (tv.title.find("whois") != std::string::npos ||
            tv.title.find("referral") != std::string::npos) {
          AssignFirst(out.whois_server, tv.value);
        } else if (tv.title.find("url") != std::string::npos ||
                   text::IsUrl(tv.value)) {
          AssignFirst(out.registrar_url, tv.value);
        } else if (tv.title.find("iana") != std::string::npos) {
          // Registrar IANA ID — numeric handle, not the registrar name.
        } else if (tv.title.find("registrar") != std::string::npos ||
                   tv.title.find("sponsor") != std::string::npos ||
                   tv.title.find("registered by") != std::string::npos ||
                   tv.title.find("registered through") != std::string::npos ||
                   tv.title.find("provided by") != std::string::npos ||
                   tv.title.find("provider") != std::string::npos) {
          AssignFirst(out.registrar, tv.value);
        } else if (out.registrar.empty() && tv.title.empty()) {
          AssignFirst(out.registrar, tv.value);
        }
        break;
      }
      case Level1Label::kDomain: {
        if (tv.title.find("domain") != std::string::npos) {
          AssignFirst(out.domain_name, tv.value);
        } else if (tv.title.find("server") != std::string::npos ||
                   tv.title.find("nserver") != std::string::npos ||
                   tv.title.find("name server") != std::string::npos) {
          if (!tv.value.empty()) out.name_servers.push_back(tv.value);
        } else if (tv.title.find("status") != std::string::npos) {
          if (!tv.value.empty()) out.statuses.push_back(tv.value);
        } else if (out.domain_name.empty() && tv.title.empty() &&
                   text::IsDomainName(tv.value)) {
          out.domain_name = tv.value;
        }
        break;
      }
      case Level1Label::kDate: {
        if (tv.title.find("creat") != std::string::npos ||
            tv.title.find("registered on") != std::string::npos ||
            tv.title.find("registration date") != std::string::npos) {
          AssignFirst(out.created, tv.value);
        } else if (tv.title.find("updat") != std::string::npos ||
                   tv.title.find("modif") != std::string::npos ||
                   tv.title.find("changed") != std::string::npos) {
          AssignFirst(out.updated, tv.value);
        } else if (tv.title.find("expir") != std::string::npos ||
                   tv.title.find("renew") != std::string::npos ||
                   tv.title.find("paid-till") != std::string::npos) {
          AssignFirst(out.expires, tv.value);
        }
        break;
      }
      case Level1Label::kRegistrant: {
        const Level2Label sub =
            registrant_index < registrant_sub_labels.size()
                ? registrant_sub_labels[registrant_index]
                : Level2Label::kOther;
        ++registrant_index;
        // Block-header lines ("Registrant:" with empty value) carry no data.
        const std::string& v = tv.value;
        if (v.empty()) break;
        AssignContactField(out.registrant, sub, v);
        break;
      }
      case Level1Label::kOther: {
        if (other_index < other_sub_labels.size() && !tv.value.empty()) {
          AssignContactField(out.other_contact,
                             other_sub_labels[other_index], tv.value);
        }
        ++other_index;
        break;
      }
      case Level1Label::kNull:
        break;
    }
  }
}

WhoisParser::WhoisParser(std::unique_ptr<crf::CrfModel> level1,
                         std::unique_ptr<crf::CrfModel> level2,
                         WhoisParserOptions options)
    : level1_(std::move(level1)),
      level2_(std::move(level2)),
      options_(options),
      tokenizer_(options_.tokenizer) {}

WhoisParser WhoisParser::Train(const std::vector<LabeledRecord>& records,
                               const WhoisParserOptions& options) {
  const text::Tokenizer tokenizer(options.tokenizer);
  const crf::Trainer trainer(options.trainer);

  const auto level1_instances = ToLevel1Instances(records, tokenizer);
  auto level1 = std::make_unique<crf::CrfModel>(
      trainer.Train(Level1Names(), level1_instances));

  auto level2_instances = ToLevel2Instances(records, tokenizer);
  if (level2_instances.empty()) {
    throw std::invalid_argument(
        "WhoisParser::Train: no registrant blocks in training data");
  }
  auto level2 = std::make_unique<crf::CrfModel>(
      trainer.Train(Level2Names(), level2_instances));

  return WhoisParser(std::move(level1), std::move(level2), options);
}

WhoisParser WhoisParser::Adapt(
    const std::vector<LabeledRecord>& records) const {
  const crf::Trainer trainer(options_.trainer);
  const auto level1_instances = ToLevel1Instances(records, tokenizer_);
  auto level1 = std::make_unique<crf::CrfModel>(
      trainer.Adapt(*level1_, level1_instances));
  auto level2_instances = ToLevel2Instances(records, tokenizer_);
  auto level2 =
      level2_instances.empty()
          ? std::make_unique<crf::CrfModel>(*level2_)
          : std::make_unique<crf::CrfModel>(
                trainer.Adapt(*level2_, level2_instances));
  return WhoisParser(std::move(level1), std::move(level2), options_);
}

std::vector<Level1Label> WhoisParser::LabelLines(
    std::string_view record_text) const {
  const auto lines = text::SplitRecord(record_text);
  std::vector<text::LineAttributes> attrs;
  attrs.reserve(lines.size());
  for (const auto& line : lines) attrs.push_back(tokenizer_.Extract(line));
  const crf::Tagger tagger(*level1_);
  std::vector<Level1Label> out;
  for (int label : tagger.Tag(attrs)) {
    out.push_back(static_cast<Level1Label>(label));
  }
  return out;
}

std::vector<Level2Label> WhoisParser::LabelRegistrantLines(
    const std::vector<std::string>& raw_lines) const {
  // Re-derive layout context within the registrant block only.
  std::string block = util::Join(raw_lines, "\n");
  const auto lines = text::SplitRecord(block);
  std::vector<text::LineAttributes> attrs;
  attrs.reserve(lines.size());
  for (const auto& line : lines) attrs.push_back(tokenizer_.Extract(line));
  const crf::Tagger tagger(*level2_);
  std::vector<Level2Label> out;
  for (int label : tagger.Tag(attrs)) {
    out.push_back(static_cast<Level2Label>(label));
  }
  return out;
}

ParsedWhois WhoisParser::Parse(std::string_view record_text) const {
  ParsedWhois out;
  const auto lines = text::SplitRecord(record_text);
  if (lines.empty()) return out;

  std::vector<text::LineAttributes> attrs;
  attrs.reserve(lines.size());
  for (const auto& line : lines) attrs.push_back(tokenizer_.Extract(line));

  const crf::Tagger level1_tagger(*level1_);
  const crf::TagResult level1 = level1_tagger.TagWithConfidence(attrs);
  out.log_prob = level1.sequence_log_prob;
  out.line_labels.reserve(level1.labels.size());
  for (int label : level1.labels) {
    out.line_labels.push_back(static_cast<Level1Label>(label));
  }

  // Second level: tag the registrant block lines.
  std::vector<text::LineAttributes> registrant_attrs;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (out.line_labels[i] == Level1Label::kRegistrant) {
      registrant_attrs.push_back(attrs[i]);
    }
  }
  std::vector<Level2Label> sub_labels;
  if (!registrant_attrs.empty()) {
    const crf::Tagger level2_tagger(*level2_);
    for (int label : level2_tagger.Tag(registrant_attrs)) {
      sub_labels.push_back(static_cast<Level2Label>(label));
    }
  }

  // The level-2 model also refines `other` blocks: admin/tech contacts use
  // the same subfield shapes, and the extracted contact serves as a
  // registrant proxy when the registrant block is missing (§3.2).
  std::vector<text::LineAttributes> other_attrs;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (out.line_labels[i] == Level1Label::kOther) {
      other_attrs.push_back(attrs[i]);
    }
  }
  std::vector<Level2Label> other_subs;
  if (!other_attrs.empty()) {
    const crf::Tagger level2_tagger(*level2_);
    for (int label : level2_tagger.Tag(other_attrs)) {
      other_subs.push_back(static_cast<Level2Label>(label));
    }
  }

  ExtractFields(lines, out.line_labels, sub_labels, out, other_subs);
  return out;
}

void WhoisParser::Save(std::ostream& os) const {
  level1_->Save(os);
  level2_->Save(os);
}

WhoisParser WhoisParser::Load(std::istream& is) {
  auto level1 = std::make_unique<crf::CrfModel>(crf::CrfModel::Load(is));
  auto level2 = std::make_unique<crf::CrfModel>(crf::CrfModel::Load(is));
  return WhoisParser(std::move(level1), std::move(level2),
                     WhoisParserOptions{});
}

void WhoisParser::SaveFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("WhoisParser: cannot open " + path);
  Save(os);
}

WhoisParser WhoisParser::LoadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("WhoisParser: cannot open " + path);
  return Load(is);
}

}  // namespace whoiscrf::whois
