#include "whois/json_export.h"

#include "util/json.h"

namespace whoiscrf::whois {

namespace {

void WriteContact(util::JsonWriter& json, const Contact& contact) {
  json.BeginObject();
  json.FieldIfNonEmpty("name", contact.name);
  json.FieldIfNonEmpty("id", contact.id);
  json.FieldIfNonEmpty("organization", contact.org);
  if (!contact.street.empty()) {
    json.Key("street").BeginArray();
    for (const auto& line : contact.street) json.String(line);
    json.EndArray();
  }
  json.FieldIfNonEmpty("city", contact.city);
  json.FieldIfNonEmpty("state", contact.state);
  json.FieldIfNonEmpty("postalCode", contact.postcode);
  json.FieldIfNonEmpty("country", contact.country);
  json.FieldIfNonEmpty("phone", contact.phone);
  json.FieldIfNonEmpty("fax", contact.fax);
  json.FieldIfNonEmpty("email", contact.email);
  if (!contact.other.empty()) {
    json.Key("other").BeginArray();
    for (const auto& line : contact.other) json.String(line);
    json.EndArray();
  }
  json.EndObject();
}

}  // namespace

std::string ToJson(const ParsedWhois& parsed) {
  util::JsonWriter json;
  json.BeginObject();
  json.FieldIfNonEmpty("domainName", parsed.domain_name);
  json.FieldIfNonEmpty("registrar", parsed.registrar);
  json.FieldIfNonEmpty("registrarUrl", parsed.registrar_url);
  json.FieldIfNonEmpty("whoisServer", parsed.whois_server);
  json.FieldIfNonEmpty("created", parsed.created);
  json.FieldIfNonEmpty("updated", parsed.updated);
  json.FieldIfNonEmpty("expires", parsed.expires);
  if (!parsed.name_servers.empty()) {
    json.Key("nameServers").BeginArray();
    for (const auto& ns : parsed.name_servers) json.String(ns);
    json.EndArray();
  }
  if (!parsed.statuses.empty()) {
    json.Key("statuses").BeginArray();
    for (const auto& status : parsed.statuses) json.String(status);
    json.EndArray();
  }
  if (!parsed.registrant.Empty()) {
    json.Key("registrant");
    WriteContact(json, parsed.registrant);
  }
  json.Key("parseLogProb").Double(parsed.log_prob);
  json.EndObject();
  return json.Release();
}

std::string ToRdapJson(const ParsedWhois& parsed) {
  util::JsonWriter json;
  json.BeginObject();
  json.Field("objectClassName", "domain");
  json.FieldIfNonEmpty("ldhName", parsed.domain_name);

  // Events (registration / last changed / expiration).
  json.Key("events").BeginArray();
  auto event = [&json](std::string_view action, const std::string& date) {
    if (date.empty()) return;
    json.BeginObject();
    json.Field("eventAction", action);
    json.Field("eventDate", date);
    json.EndObject();
  };
  event("registration", parsed.created);
  event("last changed", parsed.updated);
  event("expiration", parsed.expires);
  json.EndArray();

  if (!parsed.statuses.empty()) {
    json.Key("status").BeginArray();
    for (const auto& status : parsed.statuses) json.String(status);
    json.EndArray();
  }

  if (!parsed.name_servers.empty()) {
    json.Key("nameservers").BeginArray();
    for (const auto& ns : parsed.name_servers) {
      json.BeginObject();
      json.Field("objectClassName", "nameserver");
      json.Field("ldhName", ns);
      json.EndObject();
    }
    json.EndArray();
  }

  json.Key("entities").BeginArray();
  if (!parsed.registrar.empty()) {
    json.BeginObject();
    json.Field("objectClassName", "entity");
    json.Key("roles").BeginArray().String("registrar").EndArray();
    json.Field("handle", parsed.registrar);
    json.EndObject();
  }
  if (!parsed.registrant.Empty()) {
    json.BeginObject();
    json.Field("objectClassName", "entity");
    json.Key("roles").BeginArray().String("registrant").EndArray();
    json.Key("contact");
    WriteContact(json, parsed.registrant);
    json.EndObject();
  }
  json.EndArray();

  json.EndObject();
  return json.Release();
}

}  // namespace whoiscrf::whois
