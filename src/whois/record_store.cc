#include "whois/record_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/string_util.h"

namespace whoiscrf::whois {

namespace {

void WriteU32(std::FILE* f, uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  if (std::fwrite(b, 1, 4, f) != 4) {
    throw std::runtime_error("record store: short write");
  }
}

void WriteU64(std::FILE* f, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  if (std::fwrite(b, 1, 8, f) != 8) {
    throw std::runtime_error("record store: short write");
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string RecordStoreShardPath(const std::string& prefix, size_t shard) {
  return util::Format("%s-%05zu.wrs", prefix.c_str(), shard);
}

// --- Writer --------------------------------------------------------------

RecordStoreWriter::RecordStoreWriter(std::string prefix,
                                     RecordStoreOptions options)
    : prefix_(std::move(prefix)), options_(options) {
  if (options_.records_per_shard == 0) options_.records_per_shard = 1;
}

RecordStoreWriter::~RecordStoreWriter() {
  try {
    Finish();
  } catch (...) {
    // Destructors must not throw; an incomplete shard fails footer
    // validation on read, which is the detectable outcome we want.
  }
}

void RecordStoreWriter::OpenShard() {
  const std::string path = RecordStoreShardPath(prefix_, shard_index_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  ++shard_index_;
  offsets_.clear();
  WriteU32(file_, kRecordStoreMagic);
  WriteU32(file_, kRecordStoreVersion);
  shard_bytes_ = 8;
}

void RecordStoreWriter::SealShard() {
  if (file_ == nullptr) return;
  const uint64_t index_offset = shard_bytes_;
  for (uint64_t off : offsets_) WriteU64(file_, off);
  WriteU64(file_, offsets_.size());
  WriteU64(file_, index_offset);
  WriteU32(file_, kRecordStoreMagic);
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw std::runtime_error("record store: close failed");
}

void RecordStoreWriter::Append(std::string_view record) {
  if (file_ != nullptr && offsets_.size() >= options_.records_per_shard) {
    SealShard();
  }
  if (file_ == nullptr) OpenShard();
  offsets_.push_back(shard_bytes_);
  WriteU32(file_, static_cast<uint32_t>(record.size()));
  if (!record.empty() &&
      std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    throw std::runtime_error("record store: short write");
  }
  shard_bytes_ += 4 + record.size();
  ++total_records_;
}

void RecordStoreWriter::Finish() {
  if (file_ == nullptr && total_records_ == 0 && shard_index_ == 0) {
    // An empty store still gets one (empty) shard so readers can open it.
    OpenShard();
  }
  SealShard();
}

// --- Reader --------------------------------------------------------------

RecordStoreReader::RecordStoreReader(const std::string& prefix) {
  for (size_t s = 0;; ++s) {
    const std::string path = RecordStoreShardPath(prefix, s);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (s == 0) throw std::runtime_error("cannot open record store " + path);
      break;
    }
    Shard shard;
    shard.fd = fd;
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 28) {
      ::close(fd);
      throw std::runtime_error("record store: truncated shard " + path);
    }
    shard.file_size = static_cast<size_t>(st.st_size);
    void* map = ::mmap(nullptr, shard.file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      shard.map = static_cast<const char*>(map);
      ::madvise(map, shard.file_size, MADV_RANDOM);
    }

    char header[8];
    ReadBytes(shard, 0, header, 8);
    char footer[20];
    ReadBytes(shard, shard.file_size - 20, footer, 20);
    if (LoadU32(header) != kRecordStoreMagic ||
        LoadU32(header + 4) != kRecordStoreVersion ||
        LoadU32(footer + 16) != kRecordStoreMagic) {
      if (shard.map != nullptr) {
        ::munmap(const_cast<char*>(shard.map), shard.file_size);
      }
      ::close(fd);
      throw std::runtime_error("record store: bad magic in " + path);
    }
    const uint64_t count = LoadU64(footer);
    const uint64_t index_offset = LoadU64(footer + 8);
    if (index_offset + count * 8 + 20 != shard.file_size) {
      if (shard.map != nullptr) {
        ::munmap(const_cast<char*>(shard.map), shard.file_size);
      }
      ::close(fd);
      throw std::runtime_error("record store: inconsistent index in " + path);
    }
    shard.offsets.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      char entry[8];
      ReadBytes(shard, index_offset + i * 8, entry, 8);
      shard.offsets[i] = LoadU64(entry);
    }
    shard.first_record = total_records_;
    total_records_ += count;
    shards_.push_back(std::move(shard));
  }
}

RecordStoreReader::~RecordStoreReader() {
  for (Shard& shard : shards_) {
    if (shard.map != nullptr) {
      ::munmap(const_cast<char*>(shard.map), shard.file_size);
    }
    if (shard.fd >= 0) ::close(shard.fd);
  }
}

void RecordStoreReader::ReadBytes(const Shard& shard, uint64_t offset,
                                  char* out, size_t n) const {
  if (offset + n > shard.file_size) {
    throw std::runtime_error("record store: read past end of shard");
  }
  if (shard.map != nullptr) {
    std::memcpy(out, shard.map + offset, n);
    return;
  }
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(shard.fd, out + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("record store: pread failed: ") +
                               std::strerror(errno));
    }
    if (r == 0) throw std::runtime_error("record store: unexpected EOF");
    done += static_cast<size_t>(r);
  }
}

std::string RecordStoreReader::Get(uint64_t index) const {
  if (index >= total_records_) {
    throw std::out_of_range("record store index out of range");
  }
  // Shards are equally sized except the last, so a reverse linear probe
  // finds the owner in O(1) expected; shard counts are tiny anyway.
  size_t s = shards_.size();
  while (s > 0 && shards_[s - 1].first_record > index) --s;
  const Shard& shard = shards_[s - 1];
  const uint64_t local = index - shard.first_record;
  const uint64_t offset = shard.offsets[local];
  char len_bytes[4];
  ReadBytes(shard, offset, len_bytes, 4);
  const uint32_t len = LoadU32(len_bytes);
  std::string record(len, '\0');
  if (len > 0) ReadBytes(shard, offset + 4, record.data(), len);
  return record;
}

}  // namespace whoiscrf::whois
