#include "whois/record_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/checkpoint.h"
#include "util/string_util.h"

namespace whoiscrf::whois {

namespace {

void WriteU32(std::FILE* f, uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  if (std::fwrite(b, 1, 4, f) != 4) {
    throw std::runtime_error("record store: short write");
  }
}

void WriteU64(std::FILE* f, uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  if (std::fwrite(b, 1, 8, f) != 8) {
    throw std::runtime_error("record store: short write");
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

// In-progress shards live beside their final name until sealed.
std::string ShardTmpPath(const std::string& prefix, size_t shard) {
  return RecordStoreShardPath(prefix, shard) + ".tmp";
}

// Deletes both the sealed and in-progress form of every shard >= `first`,
// stopping at the first index where neither exists. Used by resume to drop
// work past the checkpoint cursor.
void RemoveShardsFrom(const std::string& prefix, size_t first) {
  for (size_t s = first;; ++s) {
    const bool had_final =
        std::remove(RecordStoreShardPath(prefix, s).c_str()) == 0;
    const bool had_tmp = std::remove(ShardTmpPath(prefix, s).c_str()) == 0;
    if (!had_final && !had_tmp) break;
  }
}

}  // namespace

std::string RecordStoreShardPath(const std::string& prefix, size_t shard) {
  return util::Format("%s-%05zu.wrs", prefix.c_str(), shard);
}

// --- Writer --------------------------------------------------------------

RecordStoreWriter::RecordStoreWriter(std::string prefix,
                                     RecordStoreOptions options)
    : prefix_(std::move(prefix)), options_(options) {
  if (options_.records_per_shard == 0) options_.records_per_shard = 1;
}

RecordStoreWriter::RecordStoreWriter(std::string prefix,
                                     RecordStoreOptions options,
                                     const StoreCursor& resume_from)
    : prefix_(std::move(prefix)), options_(options) {
  if (options_.records_per_shard == 0) options_.records_per_shard = 1;
  ResumeShard(resume_from);
}

RecordStoreWriter::~RecordStoreWriter() {
  try {
    Finish();
  } catch (...) {
    // Destructors must not throw; an incomplete shard fails footer
    // validation on read, which is the detectable outcome we want.
  }
}

void RecordStoreWriter::OpenShard() {
  const std::string path = ShardTmpPath(prefix_, shard_index_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open for write: " + path);
  }
  ++shard_index_;
  offsets_.clear();
  WriteU32(file_, kRecordStoreMagic);
  WriteU32(file_, kRecordStoreVersion);
  shard_bytes_ = 8;
}

void RecordStoreWriter::SealShard() {
  if (file_ == nullptr) return;
  const uint64_t index_offset = shard_bytes_;
  for (uint64_t off : offsets_) WriteU64(file_, off);
  WriteU64(file_, offsets_.size());
  WriteU64(file_, index_offset);
  WriteU32(file_, kRecordStoreMagic);
  // Make the shard durable *before* it appears under its final name:
  // readers discover `.wrs` files, so a sealed shard must never be torn.
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("record store: fsync failed");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw std::runtime_error("record store: close failed");
  const size_t sealed = shard_index_ - 1;
  const std::string tmp = ShardTmpPath(prefix_, sealed);
  const std::string final_path = RecordStoreShardPath(prefix_, sealed);
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    throw std::runtime_error("record store: cannot finalize " + final_path);
  }
  util::FsyncParentDir(final_path);
}

void RecordStoreWriter::Sync() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw std::runtime_error("record store: sync failed");
  }
}

StoreCursor RecordStoreWriter::cursor() const {
  StoreCursor c;
  c.records = total_records_;
  if (file_ != nullptr) {
    c.shard_index = shard_index_ - 1;
    c.shard_records = offsets_.size();
    c.shard_bytes = shard_bytes_;
  } else {
    // Between shards (or before the first Append): the cursor points at
    // the next shard to be opened, with nothing in it yet.
    c.shard_index = shard_index_;
    c.shard_records = 0;
    c.shard_bytes = 0;
  }
  return c;
}

void RecordStoreWriter::ResumeShard(const StoreCursor& resume_from) {
  total_records_ = resume_from.records;
  if (resume_from.shard_records == 0) {
    // Nothing durable in the cursor shard: drop it (and anything later)
    // and let OpenShard recreate it lazily on the next Append.
    shard_index_ = resume_from.shard_index;
    RemoveShardsFrom(prefix_, resume_from.shard_index);
    return;
  }
  const std::string tmp = ShardTmpPath(prefix_, resume_from.shard_index);
  const std::string final_path =
      RecordStoreShardPath(prefix_, resume_from.shard_index);
  // A crash after SealShard's rename leaves the shard under its final
  // name; un-seal it so the truncate-and-continue path below applies
  // uniformly. rename() fails harmlessly when only the .tmp exists.
  std::rename(final_path.c_str(), tmp.c_str());
  file_ = std::fopen(tmp.c_str(), "r+b");
  if (file_ == nullptr) {
    throw std::runtime_error("record store resume: missing shard " + tmp);
  }
  if (::ftruncate(::fileno(file_),
                  static_cast<off_t>(resume_from.shard_bytes)) != 0) {
    throw std::runtime_error("record store resume: cannot truncate " + tmp);
  }
  char header[8];
  if (std::fread(header, 1, 8, file_) != 8 ||
      LoadU32(header) != kRecordStoreMagic ||
      LoadU32(header + 4) != kRecordStoreVersion) {
    throw std::runtime_error("record store resume: bad header in " + tmp);
  }
  // Rebuild the in-memory index by walking the length prefixes up to the
  // cursor; any mismatch means the checkpoint and the shard disagree.
  offsets_.clear();
  uint64_t off = 8;
  for (uint64_t i = 0; i < resume_from.shard_records; ++i) {
    char len_bytes[4];
    if (off + 4 > resume_from.shard_bytes ||
        std::fread(len_bytes, 1, 4, file_) != 4) {
      throw std::runtime_error("record store resume: truncated shard " + tmp);
    }
    const uint32_t len = LoadU32(len_bytes);
    if (off + 4 + len > resume_from.shard_bytes) {
      throw std::runtime_error("record store resume: record overruns cursor " +
                               tmp);
    }
    offsets_.push_back(off);
    off += 4 + len;
    if (std::fseek(file_, static_cast<long>(off), SEEK_SET) != 0) {
      throw std::runtime_error("record store resume: seek failed in " + tmp);
    }
  }
  if (off != resume_from.shard_bytes) {
    throw std::runtime_error(
        "record store resume: cursor does not land on a record boundary in " +
        tmp);
  }
  shard_bytes_ = resume_from.shard_bytes;
  shard_index_ = resume_from.shard_index + 1;  // this shard counts as opened
  RemoveShardsFrom(prefix_, shard_index_);
}

void RecordStoreWriter::Append(std::string_view record) {
  if (file_ != nullptr && offsets_.size() >= options_.records_per_shard) {
    SealShard();
  }
  if (file_ == nullptr) OpenShard();
  offsets_.push_back(shard_bytes_);
  WriteU32(file_, static_cast<uint32_t>(record.size()));
  if (!record.empty() &&
      std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    throw std::runtime_error("record store: short write");
  }
  shard_bytes_ += 4 + record.size();
  ++total_records_;
}

void RecordStoreWriter::Finish() {
  if (file_ == nullptr && total_records_ == 0 && shard_index_ == 0) {
    // An empty store still gets one (empty) shard so readers can open it.
    OpenShard();
  }
  SealShard();
}

// --- Reader --------------------------------------------------------------

RecordStoreReader::RecordStoreReader(const std::string& prefix) {
  for (size_t s = 0;; ++s) {
    const std::string path = RecordStoreShardPath(prefix, s);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (s == 0) throw std::runtime_error("cannot open record store " + path);
      break;
    }
    Shard shard;
    shard.fd = fd;
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 28) {
      ::close(fd);
      throw std::runtime_error("record store: truncated shard " + path);
    }
    shard.file_size = static_cast<size_t>(st.st_size);
    void* map = ::mmap(nullptr, shard.file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      shard.map = static_cast<const char*>(map);
      ::madvise(map, shard.file_size, MADV_RANDOM);
    }

    char header[8];
    ReadBytes(shard, 0, header, 8);
    char footer[20];
    ReadBytes(shard, shard.file_size - 20, footer, 20);
    if (LoadU32(header) != kRecordStoreMagic ||
        LoadU32(header + 4) != kRecordStoreVersion ||
        LoadU32(footer + 16) != kRecordStoreMagic) {
      if (shard.map != nullptr) {
        ::munmap(const_cast<char*>(shard.map), shard.file_size);
      }
      ::close(fd);
      throw std::runtime_error("record store: bad magic in " + path);
    }
    const uint64_t count = LoadU64(footer);
    const uint64_t index_offset = LoadU64(footer + 8);
    if (index_offset + count * 8 + 20 != shard.file_size) {
      if (shard.map != nullptr) {
        ::munmap(const_cast<char*>(shard.map), shard.file_size);
      }
      ::close(fd);
      throw std::runtime_error("record store: inconsistent index in " + path);
    }
    shard.offsets.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      char entry[8];
      ReadBytes(shard, index_offset + i * 8, entry, 8);
      shard.offsets[i] = LoadU64(entry);
    }
    shard.first_record = total_records_;
    total_records_ += count;
    shards_.push_back(std::move(shard));
  }
}

RecordStoreReader::~RecordStoreReader() {
  for (Shard& shard : shards_) {
    if (shard.map != nullptr) {
      ::munmap(const_cast<char*>(shard.map), shard.file_size);
    }
    if (shard.fd >= 0) ::close(shard.fd);
  }
}

void RecordStoreReader::ReadBytes(const Shard& shard, uint64_t offset,
                                  char* out, size_t n) const {
  if (offset + n > shard.file_size) {
    throw std::runtime_error("record store: read past end of shard");
  }
  if (shard.map != nullptr) {
    std::memcpy(out, shard.map + offset, n);
    return;
  }
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(shard.fd, out + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("record store: pread failed: ") +
                               std::strerror(errno));
    }
    if (r == 0) throw std::runtime_error("record store: unexpected EOF");
    done += static_cast<size_t>(r);
  }
}

std::string RecordStoreReader::Get(uint64_t index) const {
  if (index >= total_records_) {
    throw std::out_of_range("record store index out of range");
  }
  // Shards are equally sized except the last, so a reverse linear probe
  // finds the owner in O(1) expected; shard counts are tiny anyway.
  size_t s = shards_.size();
  while (s > 0 && shards_[s - 1].first_record > index) --s;
  const Shard& shard = shards_[s - 1];
  const uint64_t local = index - shard.first_record;
  const uint64_t offset = shard.offsets[local];
  char len_bytes[4];
  ReadBytes(shard, offset, len_bytes, 4);
  const uint32_t len = LoadU32(len_bytes);
  std::string record(len, '\0');
  if (len > 0) ReadBytes(shard, offset + 4, record.data(), len);
  return record;
}

}  // namespace whoiscrf::whois
