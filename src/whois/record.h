// WHOIS record data model: raw records, labeled records (ground truth /
// training data), and the structured output of parsing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "whois/labels.h"

namespace whoiscrf::whois {

// A raw record as returned by a WHOIS server.
struct RawRecord {
  std::string domain;       // queried domain name
  std::string server;       // server that produced the record
  std::string text;         // full response body
  bool thin = false;        // thin (registry) vs thick (registrar) record
};

// Ground-truth labels for one record. `labels[i]` / `sub_labels[i]`
// correspond to the i-th *labeled* line of `text` as produced by
// text::SplitRecord — the invariant checked by Validate().
struct LabeledRecord {
  std::string domain;
  std::string text;
  std::vector<Level1Label> labels;
  // Subfield labels; only meaningful where labels[i] == kRegistrant, but
  // kept parallel for simplicity (nullopt elsewhere).
  std::vector<std::optional<Level2Label>> sub_labels;

  // Throws std::invalid_argument if the label vectors do not match the
  // number of labeled lines in `text`.
  void Validate() const;
};

// One parsed contact (registrant or other). Repeated street/other lines are
// accumulated; scalar fields keep the first non-empty value.
struct Contact {
  std::string name;
  std::string id;
  std::string org;
  std::vector<std::string> street;
  std::string city;
  std::string state;
  std::string postcode;
  std::string country;
  std::string phone;
  std::string fax;
  std::string email;
  std::vector<std::string> other;

  bool Empty() const;
};

// Structured output of parsing one thick record.
struct ParsedWhois {
  std::vector<Level1Label> line_labels;  // one per labeled line

  // Registrar block.
  std::string registrar;
  std::string registrar_url;
  std::string whois_server;  // referral WHOIS server (thin records)

  // Domain block.
  std::string domain_name;
  std::vector<std::string> name_servers;
  std::vector<std::string> statuses;

  // Date block (raw strings as they appeared).
  std::string created;
  std::string updated;
  std::string expires;

  Contact registrant;

  // Extracted from lines labeled `other` (admin/billing/tech contacts).
  // §3.2: these "may serve as a reasonable proxy when the registrant
  // information is missing or incomplete".
  Contact other_contact;

  // Normalized log-probability of the Viterbi labeling (parse confidence).
  double log_prob = 0.0;

  // The registrant if it carries any data, otherwise the other-contact
  // proxy (which may also be empty).
  const Contact& BestRegistrantProxy() const {
    return registrant.Empty() ? other_contact : registrant;
  }
};

// Extracts a 4-digit year from a free-form date string (e.g.
// "2014-03-02T18:11:03Z", "02-Mar-2014", "2014/03/02"), or nullopt.
std::optional<int> ExtractYear(std::string_view date);

}  // namespace whoiscrf::whois
