#include "whois/training_data.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "text/line_splitter.h"
#include "util/chunk_reader.h"
#include "util/string_util.h"
#include "whois/record_stream.h"

namespace whoiscrf::whois {

namespace {

std::string LabelToken(const LabeledRecord& record, size_t labeled_index) {
  std::string out(Level1Name(record.labels[labeled_index]));
  if (record.sub_labels[labeled_index].has_value()) {
    out += '/';
    out += Level2Name(*record.sub_labels[labeled_index]);
  }
  return out;
}

}  // namespace

void WriteLabeledRecords(std::ostream& os,
                         const std::vector<LabeledRecord>& records) {
  for (const LabeledRecord& record : records) {
    record.Validate();
    os << "@ " << record.domain << '\n';
    size_t labeled_index = 0;
    for (std::string_view raw_line : util::SplitLines(record.text)) {
      if (text::IsLabeledLine(raw_line)) {
        os << LabelToken(record, labeled_index) << '\t' << raw_line << '\n';
        ++labeled_index;
      } else {
        os << "-\t" << raw_line << '\n';
      }
    }
    os << "%%\n";
  }
}

void WriteLabeledRecordsFile(const std::string& path,
                             const std::vector<LabeledRecord>& records) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  WriteLabeledRecords(os, records);
}

namespace {

// Parses the lines of one %%-framed record body into a LabeledRecord.
// Record framing (separators, CRLF normalization, trailing-record rules)
// is owned by whois::RecordStreamReader; this only interprets the labeled
// lines. Returns false for a body with no '@' header (stray blank lines
// between separators).
bool ParseLabeledBody(const StreamedRecord& record, LabeledRecord& out) {
  bool in_record = false;
  std::vector<std::string_view> raw_lines;
  const auto lines = util::SplitLines(record.text);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const size_t line_no = record.first_line + i;
    auto fail = [&](const std::string& msg) {
      throw std::runtime_error(util::Format("labeled records line %zu: %s",
                                            line_no, msg.c_str()));
    };
    if (!in_record) {
      if (line.empty()) continue;
      if (!util::StartsWith(line, "@ ")) fail("expected '@ <domain>'");
      out = LabeledRecord{};
      out.domain = std::string(util::Trim(line.substr(2)));
      in_record = true;
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos) fail("expected '<label>\\t<text>'");
    const std::string_view label_token = line.substr(0, tab);
    const std::string_view raw = line.substr(tab + 1);
    raw_lines.push_back(raw);
    if (label_token == "-") {
      if (text::IsLabeledLine(raw)) fail("'-' label on a labeled line");
      continue;
    }
    if (!text::IsLabeledLine(raw)) fail("label on an unlabeled line");
    std::string_view l1_token = label_token;
    std::optional<Level2Label> sub;
    const size_t slash = label_token.find('/');
    if (slash != std::string_view::npos) {
      l1_token = label_token.substr(0, slash);
      sub = Level2FromName(label_token.substr(slash + 1));
      if (!sub.has_value()) fail("unknown level-2 label");
    }
    const auto l1 = Level1FromName(l1_token);
    if (!l1.has_value()) fail("unknown level-1 label");
    out.labels.push_back(*l1);
    out.sub_labels.push_back(sub);
  }
  if (!in_record) return false;
  out.text = util::Join(raw_lines, "\n");
  if (!raw_lines.empty()) out.text += "\n";
  out.Validate();
  return true;
}

}  // namespace

std::vector<LabeledRecord> ReadLabeledRecords(std::istream& is) {
  util::StreamByteSource source(is);
  RecordStreamReader reader(source);
  std::vector<LabeledRecord> out;
  StreamedRecord record;
  while (reader.Next(record)) {
    if (!record.terminated) {
      throw std::runtime_error("labeled records: unterminated record at EOF");
    }
    LabeledRecord parsed;
    if (ParseLabeledBody(record, parsed)) out.push_back(std::move(parsed));
  }
  return out;
}

std::vector<LabeledRecord> ReadLabeledRecordsFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return ReadLabeledRecords(is);
}

crf::Instance ToLevel1Instance(const LabeledRecord& record,
                               const text::Tokenizer& tokenizer) {
  record.Validate();
  crf::Instance inst;
  for (const text::Line& line : text::SplitRecord(record.text)) {
    inst.lines.push_back(tokenizer.Extract(line));
  }
  inst.labels.reserve(record.labels.size());
  for (Level1Label label : record.labels) {
    inst.labels.push_back(static_cast<int>(label));
  }
  return inst;
}

crf::Instance ToLevel2Instance(const LabeledRecord& record,
                               const text::Tokenizer& tokenizer) {
  record.Validate();
  crf::Instance inst;
  const auto lines = text::SplitRecord(record.text);
  for (size_t i = 0; i < lines.size(); ++i) {
    if (record.labels[i] != Level1Label::kRegistrant) continue;
    inst.lines.push_back(tokenizer.Extract(lines[i]));
    // Registrant lines without an explicit subfield label default to
    // `other` — e.g. decorative lines inside a registrant block.
    const Level2Label sub =
        record.sub_labels[i].value_or(Level2Label::kOther);
    inst.labels.push_back(static_cast<int>(sub));
  }
  return inst;
}

std::vector<crf::Instance> ToLevel1Instances(
    const std::vector<LabeledRecord>& records,
    const text::Tokenizer& tokenizer) {
  std::vector<crf::Instance> out;
  out.reserve(records.size());
  for (const auto& record : records) {
    out.push_back(ToLevel1Instance(record, tokenizer));
  }
  return out;
}

std::vector<crf::Instance> ToLevel2Instances(
    const std::vector<LabeledRecord>& records,
    const text::Tokenizer& tokenizer) {
  std::vector<crf::Instance> out;
  for (const auto& record : records) {
    crf::Instance inst = ToLevel2Instance(record, tokenizer);
    if (!inst.lines.empty()) out.push_back(std::move(inst));
  }
  return out;
}

}  // namespace whoiscrf::whois
