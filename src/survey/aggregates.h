// Aggregations over the survey database: everything needed to regenerate
// the paper's §6 tables and figures.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "survey/database.h"

namespace whoiscrf::survey {

struct CountRow {
  std::string key;
  size_t count = 0;
  double share = 0.0;  // of the aggregate's total
};

struct TopKResult {
  std::vector<CountRow> top;  // k rows, descending
  size_t other_count = 0;     // rows beyond the top k (excl. unknown)
  size_t unknown_count = 0;   // rows with an empty key
  size_t total = 0;
};

// Generic group-by/top-k used by every table bench. `key` extracts the
// group key (empty string = unknown); `filter` selects rows (may be null).
TopKResult TopK(const SurveyDatabase& db,
                const std::function<std::string(const DomainRow&)>& key,
                size_t k,
                const std::function<bool(const DomainRow&)>& filter = nullptr);

// Ranking/share core shared by TopK and the streaming SurveyAccumulator:
// turns pre-reduced group counts into the sorted top-k with shares and
// other/unknown buckets. `total` is the number of filtered rows (known +
// unknown groups) and is the share denominator. Having one implementation
// is what makes the streaming and in-memory survey paths bit-identical.
TopKResult TopKFromCounts(const std::map<std::string, size_t>& counts,
                          size_t total, size_t unknown, size_t k);

// Table 3: top registrant countries (privacy-protected rows excluded, as in
// the paper). `year` restricts to registrations created that year.
TopKResult TopCountries(const SurveyDatabase& db, size_t k,
                        std::optional<int> year = std::nullopt);

// Table 5: top registrars (all rows count; privacy does not hide the
// registrar).
TopKResult TopRegistrars(const SurveyDatabase& db, size_t k,
                         std::optional<int> year = std::nullopt);

// Table 6: registrars of privacy-protected domains.
TopKResult TopPrivacyRegistrars(const SurveyDatabase& db, size_t k);

// Table 7: privacy services.
TopKResult TopPrivacyServices(const SurveyDatabase& db, size_t k);

// Table 4: counts per brand organization, descending.
std::vector<CountRow> BrandCounts(const SurveyDatabase& db,
                                  const std::vector<std::string>& brands);

// Tables 8 & 9: DBL-listed domains created in `year`.
TopKResult DblTopCountries(const SurveyDatabase& db, size_t k, int year);
TopKResult DblTopRegistrars(const SurveyDatabase& db, size_t k, int year);

// Figure 4a: registrations per creation year.
std::map<int, size_t> CreationHistogram(const SurveyDatabase& db);

// Figure 4b: per-year composition: share of each listed country, privacy-
// protected, unknown, and other.
struct YearComposition {
  int year = 0;
  size_t total = 0;
  std::map<std::string, double> shares;  // country code / "Private" /
                                         // "Unknown" / "Other" -> fraction
};
std::vector<YearComposition> CountryProportionsByYear(
    const SurveyDatabase& db, const std::vector<std::string>& countries,
    int min_year, int max_year);

// Figure 5: top registrant countries within one registrar.
TopKResult RegistrarCountryBreakdown(const SurveyDatabase& db,
                                     const std::string& registrar, size_t k);

}  // namespace whoiscrf::survey
