// Builders that turn parser output into survey rows — the glue between the
// statistical parser and the §6 analyses.
#pragma once

#include <string>

#include "datagen/corpus_gen.h"
#include "survey/database.h"
#include "survey/normalize.h"
#include "whois/record.h"
#include "whois/record_stream.h"
#include "whois/stream_pipeline.h"
#include "whois/whois_parser.h"

namespace whoiscrf::survey {

// Normalizes a parsed record into one database row.
//   * registrar display names are folded to the registrar table's short
//     names ("GoDaddy.com, LLC" -> "GoDaddy");
//   * the creation year is extracted from the raw date string;
//   * the registrant country is normalized to a 2-letter code whether the
//     record printed a code or a display name;
//   * privacy protection is detected from the registrant name/org fields.
// `on_dbl` comes from the (external) blacklist, as in the paper.
DomainRow RowFromParse(const std::string& domain,
                       const whois::ParsedWhois& parsed,
                       const datagen::RegistrarTable& registrars,
                       bool on_dbl);

// Hot-path overload: identical rows, but registrar/country folding goes
// through the normalizer's precomputed indices instead of per-call scans.
// Build one SurveyNormalizer per registrar table and reuse it.
DomainRow RowFromParse(const std::string& domain,
                       const whois::ParsedWhois& parsed,
                       const SurveyNormalizer& normalizer, bool on_dbl);

// Parses `count` corpus domains with the trained parser and assembles the
// survey database, using `threads` workers (0 = hardware concurrency).
SurveyDatabase BuildDatabase(const datagen::CorpusGenerator& generator,
                             const whois::WhoisParser& parser, size_t count,
                             size_t threads = 0);

// Streaming variant for crawled corpora: drains raw records from `source`
// through the bounded-memory parse pipeline (docs/architecture.md
// "Streaming pipeline") and assembles rows in input order. The corpus is
// never materialized — resident memory is the pipeline's bounded queues
// plus the (compact) row database. The domain name comes from the parsed
// record itself, and `on_dbl` is false: a real deployment joins the
// blacklist downstream of the parse, as the paper does.
SurveyDatabase BuildDatabaseFromStream(
    whois::RecordSource& source, const whois::WhoisParser& parser,
    const datagen::RegistrarTable& registrars,
    const whois::StreamPipelineOptions& options = {});

}  // namespace whoiscrf::survey
