// SurveyAccumulator: the streaming counterpart of SurveyDatabase +
// aggregates.h. SurveyDatabase materializes one DomainRow per record —
// fine for bench-scale corpora, ruinous for the paper's 102M-record
// census. The accumulator instead folds each row into the aggregate
// tables the §6 queries actually read, so its state is
// O(years × (registrars + countries)) — bounded by key cardinality,
// independent of record count (tests/test_survey.cc asserts this).
//
// Every query reproduces the SurveyDatabase path bit for bit: both sides
// reduce to integer count maps handed to the shared TopKFromCounts
// (aggregates.h), so sort order, shares, and other/unknown buckets cannot
// drift between the in-memory and streaming paths.
//
// The accumulator serializes to a small versioned text blob
// (docs/formats.md "Survey accumulator state") so a scale run can ride it
// inside the stream checkpoint's aux payload: cursor and derived state
// are then published atomically and a killed run resumes without
// double-counting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "survey/aggregates.h"
#include "survey/database.h"

namespace whoiscrf::survey {

class SurveyAccumulator {
 public:
  SurveyAccumulator() = default;
  // `brands` are the Table 4 organizations to track by exact
  // registrant-org match (the only per-row state BrandCounts needs).
  explicit SurveyAccumulator(std::vector<std::string> brands);

  // Folds one row into every aggregate. O(log keys) per row.
  void Add(const DomainRow& row);

  uint64_t records() const { return records_; }
  uint64_t privacy_rows() const { return privacy_rows_; }

  // Queries mirroring aggregates.h over SurveyDatabase; each returns
  // exactly what the corresponding free function returns for a database
  // holding the same rows.
  TopKResult TopCountries(size_t k,
                          std::optional<int> year = std::nullopt) const;
  TopKResult TopRegistrars(size_t k,
                           std::optional<int> year = std::nullopt) const;
  TopKResult TopPrivacyRegistrars(size_t k) const;
  TopKResult TopPrivacyServices(size_t k) const;
  std::vector<CountRow> BrandCounts() const;
  TopKResult DblTopCountries(size_t k, int year) const;
  TopKResult DblTopRegistrars(size_t k, int year) const;
  std::map<int, size_t> CreationHistogram() const;
  std::vector<YearComposition> CountryProportionsByYear(
      const std::vector<std::string>& countries, int min_year,
      int max_year) const;
  TopKResult RegistrarCountryBreakdown(const std::string& registrar,
                                       size_t k) const;

  // Versioned text serialization (docs/formats.md "Survey accumulator
  // state"). Deserialize(Serialize()) reproduces the state byte for byte;
  // Deserialize throws std::runtime_error on malformed or truncated
  // input.
  std::string Serialize() const;
  static SurveyAccumulator Deserialize(const std::string& text);

  // Number of distinct aggregate entries held across all maps — the
  // bounded-memory test's measure. Grows with key cardinality (years,
  // registrars, countries, services, brands), never with records().
  size_t state_entries() const;

 private:
  // Per-creation-year counts. `rows` counts every row of the year
  // (including privacy-protected ones); `countries` only non-privacy rows
  // with a known country, mirroring the TopCountries filter. The dbl_*
  // half repeats the same shape for DBL-listed rows (Tables 8-9).
  struct YearSlot {
    size_t rows = 0;
    size_t privacy = 0;
    size_t country_unknown = 0;    // !privacy && country empty
    size_t registrar_unknown = 0;  // registrar empty
    size_t dbl_rows = 0;
    size_t dbl_privacy = 0;
    size_t dbl_country_unknown = 0;
    size_t dbl_registrar_unknown = 0;
    std::map<std::string, size_t> countries;
    std::map<std::string, size_t> registrars;
    std::map<std::string, size_t> dbl_countries;
    std::map<std::string, size_t> dbl_registrars;
  };
  // Per-registrar country mix over non-privacy rows (Figure 5).
  struct RegistrarSlot {
    size_t rows = 0;
    size_t country_unknown = 0;
    std::map<std::string, size_t> countries;
  };

  uint64_t records_ = 0;
  std::map<int, YearSlot> years_;  // keyed by created_year (0 = unknown)

  uint64_t privacy_rows_ = 0;
  size_t privacy_registrar_unknown_ = 0;
  size_t privacy_service_unknown_ = 0;
  std::map<std::string, size_t> privacy_registrars_;
  std::map<std::string, size_t> privacy_services_;

  std::map<std::string, RegistrarSlot> registrar_countries_;

  std::vector<std::string> brands_;  // preserves caller order
  std::map<std::string, size_t> brand_counts_;
};

}  // namespace whoiscrf::survey
