// Precomputed normalization indices for the survey builder.
//
// RowFromParse folds registrar display names to the registrar table's
// short names and registrant countries to 2-letter codes. The reference
// implementations (the *Scan free functions below) do a case-insensitive
// linear scan per record — fine for a unit test, ruinous for a
// 102M-record census. SurveyNormalizer builds the indices once (lowered
// registrar names, an exact-name hash map, a country-name hash map) and
// answers each query with O(1) hashing plus, for unrecognized registrar
// strings, a substring scan over pre-lowered names.
//
// A SurveyNormalizer is immutable after construction and safe to share
// across threads.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datagen/registrar_profiles.h"

namespace whoiscrf::survey {

class SurveyNormalizer {
 public:
  explicit SurveyNormalizer(const datagen::RegistrarTable& registrars);

  // Same results as NormalizeRegistrarScan(parsed_name, registrars).
  std::string NormalizeRegistrar(const std::string& parsed_name) const;

  // Same results as NormalizeCountryScan(value).
  std::string NormalizeCountry(const std::string& value) const;

 private:
  const datagen::RegistrarTable* registrars_;
  std::vector<std::string> short_lower_;  // lowered short names, table order
  std::vector<std::string> name_lower_;   // lowered display names, table order
  // Lowered display/short name -> the scan's answer for that exact string
  // (the first matching table index, which is not always the entry's own:
  // an earlier registrar's short name may be a substring).
  std::unordered_map<std::string, int> exact_;
  std::unordered_set<std::string> country_codes_;  // 2-letter upper codes
  std::unordered_map<std::string, std::string> country_names_;  // lower -> code
};

// Reference linear scans (the pre-index behavior), kept for the per-call
// RowFromParse overload and as the oracle in tests.
std::string NormalizeRegistrarScan(const std::string& parsed_name,
                                   const datagen::RegistrarTable& registrars);
std::string NormalizeCountryScan(const std::string& value);

}  // namespace whoiscrf::survey
