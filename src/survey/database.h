// SurveyDatabase: the columnar store of parsed registration fields that
// backs the paper's §6 survey ("we applied [the parser] to our crawl ...
// and constructed a database of the fields extracted by the parser").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace whoiscrf::survey {

struct DomainRow {
  std::string domain;
  std::string registrar;        // normalized short name ("GoDaddy")
  int created_year = 0;         // 0 = unknown
  std::string country_code;     // "" = unknown
  std::string registrant_name;
  std::string registrant_org;
  bool privacy_protected = false;
  std::string privacy_service;  // canonical service name when protected
  bool on_dbl = false;
};

class SurveyDatabase {
 public:
  void Add(DomainRow row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }

  size_t size() const { return rows_.size(); }
  std::span<const DomainRow> rows() const { return rows_; }

 private:
  std::vector<DomainRow> rows_;
};

// Privacy-service detection by keyword matching on the registrant name and
// organization fields (§6.3: "We identify privacy protection services using
// a small set of keywords to match against registrant name and/or
// organization fields"). On a match, *canonical_service receives the
// service's canonical name (or the raw field when unrecognized).
bool DetectPrivacyService(std::string_view registrant_name,
                          std::string_view registrant_org,
                          std::string* canonical_service);

}  // namespace whoiscrf::survey
