#include "survey/aggregates.h"

#include <algorithm>

namespace whoiscrf::survey {

TopKResult TopKFromCounts(const std::map<std::string, size_t>& counts,
                          size_t total, size_t unknown, size_t k) {
  TopKResult result;
  result.total = total;
  result.unknown_count = unknown;
  std::vector<std::pair<std::string, size_t>> sorted(counts.begin(),
                                                     counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  const double denom = total > 0 ? static_cast<double>(total) : 1.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i < k) {
      result.top.push_back(CountRow{sorted[i].first, sorted[i].second,
                                    static_cast<double>(sorted[i].second) /
                                        denom});
    } else {
      result.other_count += sorted[i].second;
    }
  }
  return result;
}

TopKResult TopK(const SurveyDatabase& db,
                const std::function<std::string(const DomainRow&)>& key,
                size_t k,
                const std::function<bool(const DomainRow&)>& filter) {
  std::map<std::string, size_t> counts;
  size_t total = 0;
  size_t unknown = 0;
  for (const DomainRow& row : db.rows()) {
    if (filter && !filter(row)) continue;
    ++total;
    const std::string group = key(row);
    if (group.empty()) {
      ++unknown;
    } else {
      ++counts[group];
    }
  }
  return TopKFromCounts(counts, total, unknown, k);
}

TopKResult TopCountries(const SurveyDatabase& db, size_t k,
                        std::optional<int> year) {
  return TopK(
      db, [](const DomainRow& r) { return r.country_code; }, k,
      [year](const DomainRow& r) {
        if (r.privacy_protected) return false;  // country not inferable
        return !year.has_value() || r.created_year == *year;
      });
}

TopKResult TopRegistrars(const SurveyDatabase& db, size_t k,
                         std::optional<int> year) {
  return TopK(
      db, [](const DomainRow& r) { return r.registrar; }, k,
      [year](const DomainRow& r) {
        return !year.has_value() || r.created_year == *year;
      });
}

TopKResult TopPrivacyRegistrars(const SurveyDatabase& db, size_t k) {
  return TopK(
      db, [](const DomainRow& r) { return r.registrar; }, k,
      [](const DomainRow& r) { return r.privacy_protected; });
}

TopKResult TopPrivacyServices(const SurveyDatabase& db, size_t k) {
  return TopK(
      db, [](const DomainRow& r) { return r.privacy_service; }, k,
      [](const DomainRow& r) { return r.privacy_protected; });
}

std::vector<CountRow> BrandCounts(const SurveyDatabase& db,
                                  const std::vector<std::string>& brands) {
  std::vector<CountRow> out;
  for (const std::string& brand : brands) {
    CountRow row;
    row.key = brand;
    for (const DomainRow& r : db.rows()) {
      if (r.registrant_org == brand) ++row.count;
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const CountRow& a, const CountRow& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

TopKResult DblTopCountries(const SurveyDatabase& db, size_t k, int year) {
  return TopK(
      db, [](const DomainRow& r) { return r.country_code; }, k,
      [year](const DomainRow& r) {
        return r.on_dbl && r.created_year == year && !r.privacy_protected;
      });
}

TopKResult DblTopRegistrars(const SurveyDatabase& db, size_t k, int year) {
  return TopK(
      db, [](const DomainRow& r) { return r.registrar; }, k,
      [year](const DomainRow& r) {
        return r.on_dbl && r.created_year == year;
      });
}

std::map<int, size_t> CreationHistogram(const SurveyDatabase& db) {
  std::map<int, size_t> hist;
  for (const DomainRow& r : db.rows()) {
    if (r.created_year > 0) ++hist[r.created_year];
  }
  return hist;
}

std::vector<YearComposition> CountryProportionsByYear(
    const SurveyDatabase& db, const std::vector<std::string>& countries,
    int min_year, int max_year) {
  std::vector<YearComposition> out;
  for (int year = min_year; year <= max_year; ++year) {
    YearComposition comp;
    comp.year = year;
    std::map<std::string, size_t> counts;
    size_t privacy = 0;
    size_t unknown = 0;
    size_t other = 0;
    for (const DomainRow& r : db.rows()) {
      if (r.created_year != year) continue;
      ++comp.total;
      if (r.privacy_protected) {
        ++privacy;
      } else if (r.country_code.empty()) {
        ++unknown;
      } else if (std::find(countries.begin(), countries.end(),
                           r.country_code) != countries.end()) {
        ++counts[r.country_code];
      } else {
        ++other;
      }
    }
    if (comp.total == 0) continue;
    const double denom = static_cast<double>(comp.total);
    for (const std::string& cc : countries) {
      comp.shares[cc] = static_cast<double>(counts[cc]) / denom;
    }
    comp.shares["Private"] = static_cast<double>(privacy) / denom;
    comp.shares["Unknown"] = static_cast<double>(unknown) / denom;
    comp.shares["Other"] = static_cast<double>(other) / denom;
    out.push_back(std::move(comp));
  }
  return out;
}

TopKResult RegistrarCountryBreakdown(const SurveyDatabase& db,
                                     const std::string& registrar,
                                     size_t k) {
  return TopK(
      db, [](const DomainRow& r) { return r.country_code; }, k,
      [&registrar](const DomainRow& r) {
        return r.registrar == registrar && !r.privacy_protected;
      });
}

}  // namespace whoiscrf::survey
