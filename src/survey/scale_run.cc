#include "survey/scale_run.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <map>

#include "datagen/record_source.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "survey/build.h"
#include "survey/normalize.h"
#include "util/string_util.h"
#include "whois/stream_pipeline.h"

namespace whoiscrf::survey {

namespace {

// Registry handles for the scale-run metrics (whoiscrf_scale_*; see
// docs/observability.md "Scale runs").
struct ScaleMetrics {
  obs::Counter* records;
  obs::Gauge* generate_seconds;
  obs::Gauge* checkpoint_seconds;
  obs::Gauge* sustained_rps;
  obs::Gauge* peak_rss_kb;
};

const ScaleMetrics& GetScaleMetrics() {
  static const ScaleMetrics metrics = [] {
    auto& reg = obs::Registry::Global();
    ScaleMetrics m;
    m.records = reg.GetCounter(
        "whoiscrf_scale_records_total",
        "Records streamed through the scale-run survey pipeline");
    m.generate_seconds = reg.GetGauge(
        "whoiscrf_scale_generate_seconds_total",
        "Cumulative reader-thread seconds spent generating scale-run "
        "records");
    m.checkpoint_seconds = reg.GetGauge(
        "whoiscrf_scale_checkpoint_seconds_total",
        "Cumulative seconds spent writing scale-run checkpoints (store "
        "fsyncs + survey snapshot + atomic replace)");
    m.sustained_rps = reg.GetGauge(
        "whoiscrf_scale_sustained_rps",
        "Sustained records/second of the most recent scale run");
    m.peak_rss_kb = reg.GetGauge(
        "whoiscrf_scale_peak_rss_kb",
        "Process peak RSS (KiB) after the most recent scale run");
    return m;
  }();
  return metrics;
}

// Exact-equality comparison of two TopKResults. Shares divide identical
// integer counts by identical totals on both paths, so == on the doubles
// is the right check — any difference is an aggregation bug, not noise.
bool SameTopK(const std::string& what, const TopKResult& a,
              const TopKResult& b, std::string* detail) {
  const auto fail = [&](const std::string& why) {
    if (detail != nullptr) *detail = what + ": " + why;
    return false;
  };
  if (a.total != b.total) return fail("total differs");
  if (a.unknown_count != b.unknown_count) return fail("unknown differs");
  if (a.other_count != b.other_count) return fail("other differs");
  if (a.top.size() != b.top.size()) return fail("top size differs");
  for (size_t i = 0; i < a.top.size(); ++i) {
    if (a.top[i].key != b.top[i].key ||
        a.top[i].count != b.top[i].count ||
        a.top[i].share != b.top[i].share) {
      return fail(util::Format("row %zu differs", i));
    }
  }
  return true;
}

void AppendTopKTable(std::string& out, const std::string& title,
                     const TopKResult& result) {
  out += "== " + title + " ==\n";
  for (const CountRow& row : result.top) {
    out += util::Format("  %-28s %12llu  %6.2f%%\n", row.key.c_str(),
                        static_cast<unsigned long long>(row.count),
                        row.share * 100.0);
  }
  if (result.other_count > 0) {
    out += util::Format("  %-28s %12llu\n", "(Other)",
                        static_cast<unsigned long long>(result.other_count));
  }
  if (result.unknown_count > 0) {
    out += util::Format(
        "  %-28s %12llu\n", "(Unknown)",
        static_cast<unsigned long long>(result.unknown_count));
  }
  out += util::Format("  %-28s %12llu\n\n", "Total",
                      static_cast<unsigned long long>(result.total));
}

}  // namespace

long ScaleRunPeakRssKb() {
  struct rusage ru = {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

std::string ScaleRunInputId(const datagen::TemporalCorpusGenerator& generator,
                            const ScaleRunOptions& options) {
  const datagen::TemporalCorpusOptions& corpus = generator.options();
  return util::Format(
             "scale-run:seed=%llu:size=%llu:events=%llu:fpe=%llu:"
             "share=%.4f:count=%llu",
             static_cast<unsigned long long>(corpus.seed),
             static_cast<unsigned long long>(corpus.size),
             static_cast<unsigned long long>(corpus.events),
             static_cast<unsigned long long>(corpus.families_per_event),
             corpus.new_registrar_share,
             static_cast<unsigned long long>(options.count)) +
         options.input_tag;
}

whois::WhoisParser TrainScaleParser(
    const datagen::TemporalCorpusGenerator& generator, size_t train_count) {
  std::vector<whois::LabeledRecord> train;
  train.reserve(train_count);
  for (size_t i = 0; i < train_count; ++i) {
    train.push_back(generator.Generate(i).thick);
  }
  whois::WhoisParserOptions options;
  options.trainer.l2_sigma = 10.0;
  options.trainer.lbfgs.max_iterations = 150;
  return whois::WhoisParser::Train(train, options);
}

ScaleRunResult RunScaleRun(const whois::WhoisParser& parser,
                           const datagen::TemporalCorpusGenerator& generator,
                           const ScaleRunOptions& options) {
  const ScaleMetrics& metrics = GetScaleMetrics();
  obs::ScopedSpan span("survey.scale_run");
  const SurveyNormalizer normalizer(generator.base().registrars());

  ScaleRunResult result;
  result.survey = SurveyAccumulator(options.brands);

  datagen::GeneratedRecordSource source(
      options.count,
      [&generator](uint64_t i) { return generator.Generate(i).thick.text; });

  whois::CheckpointedParseOptions ckpt;
  ckpt.pipeline.threads = options.threads;
  ckpt.pipeline.batch_records = options.batch_records;
  ckpt.pipeline.queue_capacity = options.queue_capacity;
  ckpt.pipeline.max_record_bytes = options.max_record_bytes;
  ckpt.pipeline.watchdog_timeout_ms = options.watchdog_timeout_ms;
  ckpt.pipeline.parse_override = options.parse_override;
  ckpt.checkpoint_interval = options.checkpoint_interval;
  ckpt.resume = options.resume;
  ckpt.input_id = ScaleRunInputId(generator, options);
  // The accumulator snapshot rides inside the checkpoint, so the survey
  // state a resume restores always matches the consumed cursor exactly —
  // no record is ever double-counted or lost across a kill.
  ckpt.save_aux = [&result] { return result.survey.Serialize(); };
  ckpt.load_aux = [&result, &options](const std::string& aux) {
    if (!aux.empty()) {
      result.survey = SurveyAccumulator::Deserialize(aux);
    } else {
      result.survey = SurveyAccumulator(options.brands);
    }
  };
  ckpt.on_checkpoint = options.on_checkpoint;

  const auto start = std::chrono::steady_clock::now();
  const whois::CheckpointedParseResult parse = whois::ParseStreamToStore(
      parser, source, options.store_prefix, ckpt,
      [&](uint64_t, const std::string&, const whois::ParsedWhois& parsed) {
        // Mirrors BuildDatabaseFromStream row assembly exactly (domain
        // from the parsed record, on_dbl joined downstream as in the
        // paper), which is what the cross-check test relies on.
        result.survey.Add(RowFromParse(parsed.domain_name, parsed,
                                       normalizer, /*on_dbl=*/false));
      });
  result.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  result.stats = parse.stats;
  result.records_stored = parse.records_stored;
  result.skipped = parse.skipped;
  result.quarantined = parse.quarantined;
  result.checkpoints = parse.checkpoints;
  result.checkpoint_seconds = parse.checkpoint_seconds;
  result.generate_seconds = source.generate_seconds();
  result.sustained_rps =
      result.run_seconds > 0.0
          ? static_cast<double>(parse.stats.records) / result.run_seconds
          : 0.0;
  result.peak_rss_kb = ScaleRunPeakRssKb();

  metrics.records->Inc(parse.stats.records);
  metrics.generate_seconds->Add(result.generate_seconds);
  metrics.checkpoint_seconds->Add(result.checkpoint_seconds);
  metrics.sustained_rps->Set(result.sustained_rps);
  metrics.peak_rss_kb->Set(static_cast<double>(result.peak_rss_kb));
  return result;
}

bool CrossCheckSurveyPaths(const whois::WhoisParser& parser,
                           const datagen::TemporalCorpusGenerator& generator,
                           const whois::StreamPipelineOptions& pipeline,
                           uint64_t count, std::string* detail) {
  obs::ScopedSpan span("survey.scale_cross_check");
  const auto generate = [&generator](uint64_t i) {
    return generator.Generate(i).thick.text;
  };
  const SurveyNormalizer normalizer(generator.base().registrars());

  SurveyAccumulator acc;
  {
    datagen::GeneratedRecordSource source(count, generate);
    whois::ParseStream(
        parser, source, pipeline,
        [&](uint64_t, const std::string&, const whois::ParsedWhois& parsed) {
          acc.Add(RowFromParse(parsed.domain_name, parsed, normalizer,
                               /*on_dbl=*/false));
        });
  }
  SurveyDatabase db;
  {
    datagen::GeneratedRecordSource source(count, generate);
    db = BuildDatabaseFromStream(source, parser,
                                 generator.base().registrars(), pipeline);
  }

  const auto fail = [&](const std::string& why) {
    if (detail != nullptr) *detail = why;
    return false;
  };
  if (acc.records() != db.size()) return fail("record counts differ");

  const std::map<int, size_t> hist_db = CreationHistogram(db);
  if (acc.CreationHistogram() != hist_db) {
    return fail("creation histogram differs");
  }

  constexpr size_t kTop = 10;
  if (!SameTopK("top registrars", acc.TopRegistrars(kTop),
                TopRegistrars(db, kTop), detail) ||
      !SameTopK("top countries", acc.TopCountries(kTop),
                TopCountries(db, kTop), detail) ||
      !SameTopK("privacy registrars", acc.TopPrivacyRegistrars(kTop),
                TopPrivacyRegistrars(db, kTop), detail) ||
      !SameTopK("privacy services", acc.TopPrivacyServices(kTop),
                TopPrivacyServices(db, kTop), detail)) {
    return false;
  }
  for (const auto& [year, rows] : hist_db) {
    if (!SameTopK(util::Format("registrars %d", year),
                  acc.TopRegistrars(kTop, year),
                  TopRegistrars(db, kTop, year), detail) ||
        !SameTopK(util::Format("countries %d", year),
                  acc.TopCountries(kTop, year),
                  TopCountries(db, kTop, year), detail) ||
        !SameTopK(util::Format("dbl registrars %d", year),
                  acc.DblTopRegistrars(kTop, year),
                  DblTopRegistrars(db, kTop, year), detail) ||
        !SameTopK(util::Format("dbl countries %d", year),
                  acc.DblTopCountries(kTop, year),
                  DblTopCountries(db, kTop, year), detail)) {
      return false;
    }
  }

  if (!hist_db.empty()) {
    std::vector<std::string> tracked;
    for (const CountRow& row : acc.TopCountries(5).top) {
      tracked.push_back(row.key);
    }
    const int min_year = hist_db.begin()->first;
    const int max_year = hist_db.rbegin()->first;
    const auto comp_acc =
        acc.CountryProportionsByYear(tracked, min_year, max_year);
    const auto comp_db =
        CountryProportionsByYear(db, tracked, min_year, max_year);
    if (comp_acc.size() != comp_db.size()) {
      return fail("year composition row counts differ");
    }
    for (size_t i = 0; i < comp_acc.size(); ++i) {
      if (comp_acc[i].year != comp_db[i].year ||
          comp_acc[i].total != comp_db[i].total ||
          comp_acc[i].shares != comp_db[i].shares) {
        return fail(util::Format("year composition %d differs",
                                 comp_acc[i].year));
      }
    }
  }

  const TopKResult registrars = acc.TopRegistrars(1);
  if (!registrars.top.empty()) {
    const std::string& top_registrar = registrars.top[0].key;
    if (!SameTopK("registrar country breakdown",
                  acc.RegistrarCountryBreakdown(top_registrar, kTop),
                  RegistrarCountryBreakdown(db, top_registrar, kTop),
                  detail)) {
      return false;
    }
  }
  return true;
}

std::string RenderScaleSurveyTables(const SurveyAccumulator& acc,
                                    size_t top_k) {
  std::string out;
  out += "== creation-year histogram (Figure 4a) ==\n";
  for (const auto& [year, count] : acc.CreationHistogram()) {
    out += util::Format("  %d  %llu\n", year,
                        static_cast<unsigned long long>(count));
  }
  out += '\n';
  AppendTopKTable(out, "top registrars (Table 5)",
                  acc.TopRegistrars(top_k));
  AppendTopKTable(out, "top registrant countries, non-private (Table 3)",
                  acc.TopCountries(top_k));
  AppendTopKTable(out, "registrars of privacy-protected domains (Table 6)",
                  acc.TopPrivacyRegistrars(top_k));
  AppendTopKTable(out, "privacy services (Table 7)",
                  acc.TopPrivacyServices(top_k));
  const std::vector<CountRow> brands = acc.BrandCounts();
  if (!brands.empty()) {
    out += "== brand organizations (Table 4) ==\n";
    for (const CountRow& row : brands) {
      out += util::Format("  %-28s %12llu\n", row.key.c_str(),
                          static_cast<unsigned long long>(row.count));
    }
    out += '\n';
  }
  const double privacy_share =
      acc.records() > 0 ? static_cast<double>(acc.privacy_rows()) /
                              static_cast<double>(acc.records())
                        : 0.0;
  out += util::Format(
      "records: %llu   privacy-protected: %llu (%.2f%%)\n",
      static_cast<unsigned long long>(acc.records()),
      static_cast<unsigned long long>(acc.privacy_rows()),
      privacy_share * 100.0);
  return out;
}

}  // namespace whoiscrf::survey
