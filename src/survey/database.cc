#include "survey/database.h"

#include "datagen/privacy.h"
#include "util/string_util.h"

namespace whoiscrf::survey {

bool DetectPrivacyService(std::string_view registrant_name,
                          std::string_view registrant_org,
                          std::string* canonical_service) {
  // Canonical services first: exact-ish name containment.
  for (const auto& service : datagen::PrivacyServices()) {
    if (util::ContainsIgnoreCase(registrant_name, service.name) ||
        util::ContainsIgnoreCase(registrant_org, service.name)) {
      if (canonical_service != nullptr) {
        *canonical_service = std::string(service.name);
      }
      return true;
    }
  }
  // Generic keywords ("they stand out because they by definition have many
  // domains associated with them").
  for (std::string_view keyword :
       {"privacy", "proxy", "private registration", "whois agent",
        "protected", "whoisguard", "identity shield"}) {
    if (util::ContainsIgnoreCase(registrant_name, keyword) ||
        util::ContainsIgnoreCase(registrant_org, keyword)) {
      if (canonical_service != nullptr) {
        *canonical_service = registrant_org.empty()
                                 ? std::string(registrant_name)
                                 : std::string(registrant_org);
      }
      return true;
    }
  }
  return false;
}

}  // namespace whoiscrf::survey
