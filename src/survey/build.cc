#include "survey/build.h"

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace whoiscrf::survey {

namespace {

// Row assembly shared by both RowFromParse overloads; only the
// registrar/country folding strategy differs.
template <typename RegistrarFn, typename CountryFn>
DomainRow AssembleRow(const std::string& domain,
                      const whois::ParsedWhois& parsed, bool on_dbl,
                      RegistrarFn&& normalize_registrar,
                      CountryFn&& normalize_country) {
  DomainRow row;
  row.domain = domain;
  row.registrar = normalize_registrar(parsed.registrar);
  row.created_year = whois::ExtractYear(parsed.created).value_or(0);
  row.registrant_name = parsed.registrant.name;
  row.registrant_org = parsed.registrant.org;
  row.on_dbl = on_dbl;

  std::string service;
  row.privacy_protected = DetectPrivacyService(
      parsed.registrant.name, parsed.registrant.org, &service);
  if (row.privacy_protected) {
    row.privacy_service = service;
  } else {
    row.country_code = normalize_country(parsed.registrant.country);
  }
  return row;
}

}  // namespace

DomainRow RowFromParse(const std::string& domain,
                       const whois::ParsedWhois& parsed,
                       const datagen::RegistrarTable& registrars,
                       bool on_dbl) {
  return AssembleRow(
      domain, parsed, on_dbl,
      [&](const std::string& name) {
        return NormalizeRegistrarScan(name, registrars);
      },
      [](const std::string& value) { return NormalizeCountryScan(value); });
}

DomainRow RowFromParse(const std::string& domain,
                       const whois::ParsedWhois& parsed,
                       const SurveyNormalizer& normalizer, bool on_dbl) {
  return AssembleRow(
      domain, parsed, on_dbl,
      [&](const std::string& name) {
        return normalizer.NormalizeRegistrar(name);
      },
      [&](const std::string& value) {
        return normalizer.NormalizeCountry(value);
      });
}

SurveyDatabase BuildDatabase(const datagen::CorpusGenerator& generator,
                             const whois::WhoisParser& parser, size_t count,
                             size_t threads) {
  std::vector<DomainRow> rows(count);
  util::ThreadPool pool(threads);
  const SurveyNormalizer normalizer(generator.registrars());
  const size_t chunks = std::min(count, pool.size());
  std::vector<whois::ParseWorkspace> workspaces(std::max<size_t>(chunks, 1));
  pool.ParallelChunks(count, [&](size_t begin, size_t end, size_t chunk) {
    whois::ParseWorkspace& ws = workspaces[chunk];
    for (size_t i = begin; i < end; ++i) {
      const datagen::GeneratedDomain domain = generator.Generate(i);
      const whois::ParsedWhois parsed = parser.Parse(domain.thick.text, ws);
      rows[i] = RowFromParse(domain.facts.domain, parsed, normalizer,
                             domain.facts.on_dbl);
      if (rows[i].registrar.empty()) {
        // Thick records from a few registrars omit the registrar name; the
        // crawl pipeline still knows it from the thin registry record
        // (§2.2), so the survey attributes those rows via the thin hop.
        rows[i].registrar =
            normalizer.NormalizeRegistrar(domain.facts.registrar_name);
      }
    }
  });
  SurveyDatabase db;
  db.Reserve(count);
  for (auto& row : rows) db.Add(std::move(row));
  return db;
}

}  // namespace whoiscrf::survey
