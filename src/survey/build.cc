#include "survey/build.h"

#include "datagen/country_data.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace whoiscrf::survey {

namespace {

std::string NormalizeRegistrar(const std::string& parsed_name,
                               const datagen::RegistrarTable& registrars) {
  if (parsed_name.empty()) return {};
  for (size_t i = 0; i < registrars.size(); ++i) {
    const auto& info = registrars.info(i);
    if (util::ContainsIgnoreCase(parsed_name, info.short_name) ||
        util::ContainsIgnoreCase(info.name, parsed_name)) {
      return info.short_name;
    }
  }
  return parsed_name;  // unrecognized registrar: keep the raw name
}

std::string NormalizeCountry(const std::string& value) {
  const std::string_view trimmed = util::Trim(value);
  if (trimmed.empty()) return {};
  if (trimmed.size() == 2) {
    const std::string upper = util::ToUpper(trimmed);
    if (datagen::CountryIndex(upper) >= 0) return upper;
  }
  for (const auto& country : datagen::Countries()) {
    if (!country.name.empty() &&
        util::EqualsIgnoreCase(trimmed, country.name)) {
      return std::string(country.code);
    }
  }
  return {};  // unparseable -> unknown
}

}  // namespace

DomainRow RowFromParse(const std::string& domain,
                       const whois::ParsedWhois& parsed,
                       const datagen::RegistrarTable& registrars,
                       bool on_dbl) {
  DomainRow row;
  row.domain = domain;
  row.registrar = NormalizeRegistrar(parsed.registrar, registrars);
  row.created_year = whois::ExtractYear(parsed.created).value_or(0);
  row.registrant_name = parsed.registrant.name;
  row.registrant_org = parsed.registrant.org;
  row.on_dbl = on_dbl;

  std::string service;
  row.privacy_protected = DetectPrivacyService(
      parsed.registrant.name, parsed.registrant.org, &service);
  if (row.privacy_protected) {
    row.privacy_service = service;
  } else {
    row.country_code = NormalizeCountry(parsed.registrant.country);
  }
  return row;
}

SurveyDatabase BuildDatabase(const datagen::CorpusGenerator& generator,
                             const whois::WhoisParser& parser, size_t count,
                             size_t threads) {
  std::vector<DomainRow> rows(count);
  util::ThreadPool pool(threads);
  pool.ParallelFor(count, [&](size_t i) {
    const datagen::GeneratedDomain domain = generator.Generate(i);
    const whois::ParsedWhois parsed = parser.Parse(domain.thick.text);
    rows[i] = RowFromParse(domain.facts.domain, parsed,
                           generator.registrars(), domain.facts.on_dbl);
    if (rows[i].registrar.empty()) {
      // Thick records from a few registrars omit the registrar name; the
      // crawl pipeline still knows it from the thin registry record (§2.2),
      // so the survey attributes those rows via the thin hop.
      rows[i].registrar = NormalizeRegistrar(domain.facts.registrar_name,
                                             generator.registrars());
    }
  });
  SurveyDatabase db;
  db.Reserve(count);
  for (auto& row : rows) db.Add(std::move(row));
  return db;
}

}  // namespace whoiscrf::survey
