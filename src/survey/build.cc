#include "survey/build.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace whoiscrf::survey {

namespace {

// Registry handles for the survey-build metrics (whoiscrf_survey_*; see
// docs/observability.md). The stage-seconds gauges are cumulative across
// chunks: each worker accumulates locally and flushes once per chunk, so
// per-row cost stays at a few steady_clock reads.
struct SurveyMetrics {
  obs::Counter* rows;
  obs::Gauge* generate_seconds;
  obs::Gauge* parse_seconds;
  obs::Gauge* normalize_seconds;
  obs::Histogram* chunk_seconds;
};

const SurveyMetrics& GetSurveyMetrics() {
  static const SurveyMetrics metrics = [] {
    auto& reg = obs::Registry::Global();
    SurveyMetrics m;
    m.rows = reg.GetCounter("whoiscrf_survey_rows_total",
                             "Domain rows built into the survey database");
    m.generate_seconds = reg.GetGauge(
        "whoiscrf_survey_generate_seconds_total",
        "Cumulative seconds spent generating synthetic records "
        "(summed across worker threads)");
    m.parse_seconds = reg.GetGauge(
        "whoiscrf_survey_parse_seconds_total",
        "Cumulative seconds spent parsing records during survey build "
        "(summed across worker threads)");
    m.normalize_seconds = reg.GetGauge(
        "whoiscrf_survey_normalize_seconds_total",
        "Cumulative seconds spent normalizing parses into domain rows "
        "(summed across worker threads)");
    m.chunk_seconds = reg.GetHistogram(
        "whoiscrf_survey_chunk_seconds",
        "Wall time of one survey build chunk (one worker's share)",
        {0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60});
    return m;
  }();
  return metrics;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Row assembly shared by both RowFromParse overloads; only the
// registrar/country folding strategy differs.
template <typename RegistrarFn, typename CountryFn>
DomainRow AssembleRow(const std::string& domain,
                      const whois::ParsedWhois& parsed, bool on_dbl,
                      RegistrarFn&& normalize_registrar,
                      CountryFn&& normalize_country) {
  DomainRow row;
  row.domain = domain;
  row.registrar = normalize_registrar(parsed.registrar);
  row.created_year = whois::ExtractYear(parsed.created).value_or(0);
  row.registrant_name = parsed.registrant.name;
  row.registrant_org = parsed.registrant.org;
  row.on_dbl = on_dbl;

  std::string service;
  row.privacy_protected = DetectPrivacyService(
      parsed.registrant.name, parsed.registrant.org, &service);
  if (row.privacy_protected) {
    row.privacy_service = service;
  } else {
    row.country_code = normalize_country(parsed.registrant.country);
  }
  return row;
}

}  // namespace

DomainRow RowFromParse(const std::string& domain,
                       const whois::ParsedWhois& parsed,
                       const datagen::RegistrarTable& registrars,
                       bool on_dbl) {
  return AssembleRow(
      domain, parsed, on_dbl,
      [&](const std::string& name) {
        return NormalizeRegistrarScan(name, registrars);
      },
      [](const std::string& value) { return NormalizeCountryScan(value); });
}

DomainRow RowFromParse(const std::string& domain,
                       const whois::ParsedWhois& parsed,
                       const SurveyNormalizer& normalizer, bool on_dbl) {
  return AssembleRow(
      domain, parsed, on_dbl,
      [&](const std::string& name) {
        return normalizer.NormalizeRegistrar(name);
      },
      [&](const std::string& value) {
        return normalizer.NormalizeCountry(value);
      });
}

SurveyDatabase BuildDatabase(const datagen::CorpusGenerator& generator,
                             const whois::WhoisParser& parser, size_t count,
                             size_t threads) {
  const SurveyMetrics& metrics = GetSurveyMetrics();
  obs::ScopedSpan build_span("survey.build_database");
  std::vector<DomainRow> rows(count);
  util::ThreadPool pool(threads);
  const SurveyNormalizer normalizer(generator.registrars());
  const size_t chunks = std::min(count, pool.size());
  std::vector<whois::ParseWorkspace> workspaces(std::max<size_t>(chunks, 1));
  pool.ParallelChunks(count, [&](size_t begin, size_t end, size_t chunk) {
    obs::ScopedSpan chunk_span("survey.chunk");
    whois::ParseWorkspace& ws = workspaces[chunk];
    const auto chunk_start = std::chrono::steady_clock::now();
    double generate_s = 0.0, parse_s = 0.0, normalize_s = 0.0;
    for (size_t i = begin; i < end; ++i) {
      auto t = std::chrono::steady_clock::now();
      const datagen::GeneratedDomain domain = generator.Generate(i);
      generate_s += SecondsSince(t);
      t = std::chrono::steady_clock::now();
      const whois::ParsedWhois parsed = parser.Parse(domain.thick.text, ws);
      parse_s += SecondsSince(t);
      t = std::chrono::steady_clock::now();
      rows[i] = RowFromParse(domain.facts.domain, parsed, normalizer,
                             domain.facts.on_dbl);
      if (rows[i].registrar.empty()) {
        // Thick records from a few registrars omit the registrar name; the
        // crawl pipeline still knows it from the thin registry record
        // (§2.2), so the survey attributes those rows via the thin hop.
        rows[i].registrar =
            normalizer.NormalizeRegistrar(domain.facts.registrar_name);
      }
      normalize_s += SecondsSince(t);
    }
    metrics.rows->Inc(end - begin);
    metrics.generate_seconds->Add(generate_s);
    metrics.parse_seconds->Add(parse_s);
    metrics.normalize_seconds->Add(normalize_s);
    metrics.chunk_seconds->Observe(SecondsSince(chunk_start));
  });
  SurveyDatabase db;
  db.Reserve(count);
  for (auto& row : rows) db.Add(std::move(row));
  return db;
}

SurveyDatabase BuildDatabaseFromStream(
    whois::RecordSource& source, const whois::WhoisParser& parser,
    const datagen::RegistrarTable& registrars,
    const whois::StreamPipelineOptions& options) {
  const SurveyMetrics& metrics = GetSurveyMetrics();
  obs::ScopedSpan build_span("survey.build_stream");
  const SurveyNormalizer normalizer(registrars);
  SurveyDatabase db;
  double normalize_s = 0.0;
  whois::ParseStream(
      parser, source, options,
      [&](uint64_t, const std::string&, const whois::ParsedWhois& parsed) {
        const auto t = std::chrono::steady_clock::now();
        db.Add(RowFromParse(parsed.domain_name, parsed, normalizer,
                            /*on_dbl=*/false));
        normalize_s += SecondsSince(t);
      });
  metrics.rows->Inc(db.size());
  metrics.normalize_seconds->Add(normalize_s);
  return db;
}

}  // namespace whoiscrf::survey
