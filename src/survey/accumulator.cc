#include "survey/accumulator.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/string_util.h"

namespace whoiscrf::survey {

namespace {

inline constexpr char kAccumulatorHeader[] = "whoiscrf.survey_acc.v1";

[[noreturn]] void Malformed(const std::string& detail) {
  throw std::runtime_error("malformed survey accumulator state: " + detail);
}

size_t ParseCount(std::istringstream& fields, const char* key) {
  unsigned long long v = 0;
  if (!(fields >> v)) Malformed(std::string("bad value for ") + key);
  return static_cast<size_t>(v);
}

// Map keys (registrar names, country codes, services, brands) may contain
// spaces, so they are serialized as the rest of the line after the
// numeric fields.
std::string ParseRestOfLine(std::istringstream& fields) {
  std::string rest;
  std::getline(fields, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  return rest;
}

void AppendCountMap(std::string& out, const char* key,
                    const std::map<std::string, size_t>& counts) {
  for (const auto& [name, count] : counts) {
    out += util::Format("%s %llu ", key,
                        static_cast<unsigned long long>(count));
    out += name;
    out += '\n';
  }
}

}  // namespace

SurveyAccumulator::SurveyAccumulator(std::vector<std::string> brands)
    : brands_(std::move(brands)) {
  for (const std::string& brand : brands_) brand_counts_[brand] = 0;
}

void SurveyAccumulator::Add(const DomainRow& row) {
  ++records_;

  YearSlot& slot = years_[row.created_year];
  ++slot.rows;
  if (row.registrar.empty()) {
    ++slot.registrar_unknown;
  } else {
    ++slot.registrars[row.registrar];
  }
  if (row.privacy_protected) {
    ++slot.privacy;
  } else if (row.country_code.empty()) {
    ++slot.country_unknown;
  } else {
    ++slot.countries[row.country_code];
  }
  if (row.on_dbl) {
    ++slot.dbl_rows;
    if (row.registrar.empty()) {
      ++slot.dbl_registrar_unknown;
    } else {
      ++slot.dbl_registrars[row.registrar];
    }
    if (row.privacy_protected) {
      ++slot.dbl_privacy;
    } else if (row.country_code.empty()) {
      ++slot.dbl_country_unknown;
    } else {
      ++slot.dbl_countries[row.country_code];
    }
  }

  if (row.privacy_protected) {
    ++privacy_rows_;
    if (row.registrar.empty()) {
      ++privacy_registrar_unknown_;
    } else {
      ++privacy_registrars_[row.registrar];
    }
    if (row.privacy_service.empty()) {
      ++privacy_service_unknown_;
    } else {
      ++privacy_services_[row.privacy_service];
    }
  } else {
    // Figure 5 reads the country mix of one registrar's non-privacy rows;
    // the registrar key may itself be empty (unattributed rows form their
    // own slot, matching the database filter `registrar == ""`).
    RegistrarSlot& reg = registrar_countries_[row.registrar];
    ++reg.rows;
    if (row.country_code.empty()) {
      ++reg.country_unknown;
    } else {
      ++reg.countries[row.country_code];
    }
  }

  if (!brand_counts_.empty()) {
    const auto it = brand_counts_.find(row.registrant_org);
    if (it != brand_counts_.end()) ++it->second;
  }
}

TopKResult SurveyAccumulator::TopCountries(size_t k,
                                           std::optional<int> year) const {
  if (year.has_value()) {
    const auto it = years_.find(*year);
    if (it == years_.end()) return TopKFromCounts({}, 0, 0, k);
    const YearSlot& slot = it->second;
    return TopKFromCounts(slot.countries, slot.rows - slot.privacy,
                          slot.country_unknown, k);
  }
  std::map<std::string, size_t> counts;
  size_t total = 0;
  size_t unknown = 0;
  for (const auto& [y, slot] : years_) {
    total += slot.rows - slot.privacy;
    unknown += slot.country_unknown;
    for (const auto& [cc, count] : slot.countries) counts[cc] += count;
  }
  return TopKFromCounts(counts, total, unknown, k);
}

TopKResult SurveyAccumulator::TopRegistrars(size_t k,
                                            std::optional<int> year) const {
  if (year.has_value()) {
    const auto it = years_.find(*year);
    if (it == years_.end()) return TopKFromCounts({}, 0, 0, k);
    const YearSlot& slot = it->second;
    return TopKFromCounts(slot.registrars, slot.rows, slot.registrar_unknown,
                          k);
  }
  std::map<std::string, size_t> counts;
  size_t total = 0;
  size_t unknown = 0;
  for (const auto& [y, slot] : years_) {
    total += slot.rows;
    unknown += slot.registrar_unknown;
    for (const auto& [name, count] : slot.registrars) counts[name] += count;
  }
  return TopKFromCounts(counts, total, unknown, k);
}

TopKResult SurveyAccumulator::TopPrivacyRegistrars(size_t k) const {
  return TopKFromCounts(privacy_registrars_, privacy_rows_,
                        privacy_registrar_unknown_, k);
}

TopKResult SurveyAccumulator::TopPrivacyServices(size_t k) const {
  return TopKFromCounts(privacy_services_, privacy_rows_,
                        privacy_service_unknown_, k);
}

std::vector<CountRow> SurveyAccumulator::BrandCounts() const {
  std::vector<CountRow> out;
  for (const std::string& brand : brands_) {
    CountRow row;
    row.key = brand;
    const auto it = brand_counts_.find(brand);
    if (it != brand_counts_.end()) row.count = it->second;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const CountRow& a, const CountRow& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

TopKResult SurveyAccumulator::DblTopCountries(size_t k, int year) const {
  const auto it = years_.find(year);
  if (it == years_.end()) return TopKFromCounts({}, 0, 0, k);
  const YearSlot& slot = it->second;
  return TopKFromCounts(slot.dbl_countries, slot.dbl_rows - slot.dbl_privacy,
                        slot.dbl_country_unknown, k);
}

TopKResult SurveyAccumulator::DblTopRegistrars(size_t k, int year) const {
  const auto it = years_.find(year);
  if (it == years_.end()) return TopKFromCounts({}, 0, 0, k);
  const YearSlot& slot = it->second;
  return TopKFromCounts(slot.dbl_registrars, slot.dbl_rows,
                        slot.dbl_registrar_unknown, k);
}

std::map<int, size_t> SurveyAccumulator::CreationHistogram() const {
  std::map<int, size_t> hist;
  for (const auto& [year, slot] : years_) {
    if (year > 0) hist[year] = slot.rows;
  }
  return hist;
}

std::vector<YearComposition> SurveyAccumulator::CountryProportionsByYear(
    const std::vector<std::string>& countries, int min_year,
    int max_year) const {
  const std::set<std::string> tracked(countries.begin(), countries.end());
  std::vector<YearComposition> out;
  for (int year = min_year; year <= max_year; ++year) {
    const auto it = years_.find(year);
    if (it == years_.end() || it->second.rows == 0) continue;
    const YearSlot& slot = it->second;
    YearComposition comp;
    comp.year = year;
    comp.total = slot.rows;
    const double denom = static_cast<double>(slot.rows);
    size_t tracked_total = 0;
    for (const std::string& cc : countries) {
      const auto cit = slot.countries.find(cc);
      const size_t count = cit != slot.countries.end() ? cit->second : 0;
      comp.shares[cc] = static_cast<double>(count) / denom;
    }
    for (const auto& [cc, count] : slot.countries) {
      if (tracked.count(cc) > 0) tracked_total += count;
    }
    const size_t other =
        slot.rows - slot.privacy - slot.country_unknown - tracked_total;
    comp.shares["Private"] = static_cast<double>(slot.privacy) / denom;
    comp.shares["Unknown"] =
        static_cast<double>(slot.country_unknown) / denom;
    comp.shares["Other"] = static_cast<double>(other) / denom;
    out.push_back(std::move(comp));
  }
  return out;
}

TopKResult SurveyAccumulator::RegistrarCountryBreakdown(
    const std::string& registrar, size_t k) const {
  const auto it = registrar_countries_.find(registrar);
  if (it == registrar_countries_.end()) return TopKFromCounts({}, 0, 0, k);
  const RegistrarSlot& slot = it->second;
  return TopKFromCounts(slot.countries, slot.rows, slot.country_unknown, k);
}

std::string SurveyAccumulator::Serialize() const {
  std::string out;
  out += kAccumulatorHeader;
  out += '\n';
  out += util::Format("records %llu\n",
                      static_cast<unsigned long long>(records_));
  out += util::Format(
      "privacy %llu %llu %llu\n",
      static_cast<unsigned long long>(privacy_rows_),
      static_cast<unsigned long long>(privacy_registrar_unknown_),
      static_cast<unsigned long long>(privacy_service_unknown_));
  AppendCountMap(out, "preg", privacy_registrars_);
  AppendCountMap(out, "psvc", privacy_services_);
  for (const std::string& brand : brands_) {
    const auto it = brand_counts_.find(brand);
    out += util::Format(
        "brand %llu ",
        static_cast<unsigned long long>(
            it != brand_counts_.end() ? it->second : 0));
    out += brand;
    out += '\n';
  }
  for (const auto& [year, slot] : years_) {
    out += util::Format(
        "year %d %llu %llu %llu %llu %llu %llu %llu %llu\n", year,
        static_cast<unsigned long long>(slot.rows),
        static_cast<unsigned long long>(slot.privacy),
        static_cast<unsigned long long>(slot.country_unknown),
        static_cast<unsigned long long>(slot.registrar_unknown),
        static_cast<unsigned long long>(slot.dbl_rows),
        static_cast<unsigned long long>(slot.dbl_privacy),
        static_cast<unsigned long long>(slot.dbl_country_unknown),
        static_cast<unsigned long long>(slot.dbl_registrar_unknown));
    AppendCountMap(out, "yc", slot.countries);
    AppendCountMap(out, "yreg", slot.registrars);
    AppendCountMap(out, "ydc", slot.dbl_countries);
    AppendCountMap(out, "ydreg", slot.dbl_registrars);
  }
  for (const auto& [name, slot] : registrar_countries_) {
    out += util::Format("reg %llu %llu ",
                        static_cast<unsigned long long>(slot.rows),
                        static_cast<unsigned long long>(slot.country_unknown));
    out += name;
    out += '\n';
    AppendCountMap(out, "rcc", slot.countries);
  }
  out += "end\n";
  return out;
}

SurveyAccumulator SurveyAccumulator::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kAccumulatorHeader) {
    Malformed("missing header");
  }
  SurveyAccumulator acc;
  YearSlot* year_slot = nullptr;       // context for yc/yreg/ydc/ydreg
  RegistrarSlot* reg_slot = nullptr;   // context for rcc
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (saw_end) Malformed("data after end marker");
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "records") {
      acc.records_ = ParseCount(fields, "records");
    } else if (key == "privacy") {
      acc.privacy_rows_ = ParseCount(fields, "privacy");
      acc.privacy_registrar_unknown_ = ParseCount(fields, "privacy");
      acc.privacy_service_unknown_ = ParseCount(fields, "privacy");
    } else if (key == "preg") {
      const size_t count = ParseCount(fields, "preg");
      acc.privacy_registrars_[ParseRestOfLine(fields)] = count;
    } else if (key == "psvc") {
      const size_t count = ParseCount(fields, "psvc");
      acc.privacy_services_[ParseRestOfLine(fields)] = count;
    } else if (key == "brand") {
      const size_t count = ParseCount(fields, "brand");
      std::string brand = ParseRestOfLine(fields);
      acc.brand_counts_[brand] = count;
      acc.brands_.push_back(std::move(brand));
    } else if (key == "year") {
      int year = 0;
      if (!(fields >> year)) Malformed("bad year");
      YearSlot& slot = acc.years_[year];
      slot.rows = ParseCount(fields, "year");
      slot.privacy = ParseCount(fields, "year");
      slot.country_unknown = ParseCount(fields, "year");
      slot.registrar_unknown = ParseCount(fields, "year");
      slot.dbl_rows = ParseCount(fields, "year");
      slot.dbl_privacy = ParseCount(fields, "year");
      slot.dbl_country_unknown = ParseCount(fields, "year");
      slot.dbl_registrar_unknown = ParseCount(fields, "year");
      year_slot = &slot;
      reg_slot = nullptr;
    } else if (key == "yc" || key == "yreg" || key == "ydc" ||
               key == "ydreg") {
      if (year_slot == nullptr) Malformed(key + " outside a year block");
      const size_t count = ParseCount(fields, key.c_str());
      std::string name = ParseRestOfLine(fields);
      if (key == "yc") {
        year_slot->countries[std::move(name)] = count;
      } else if (key == "yreg") {
        year_slot->registrars[std::move(name)] = count;
      } else if (key == "ydc") {
        year_slot->dbl_countries[std::move(name)] = count;
      } else {
        year_slot->dbl_registrars[std::move(name)] = count;
      }
    } else if (key == "reg") {
      const size_t rows = ParseCount(fields, "reg");
      const size_t unknown = ParseCount(fields, "reg");
      RegistrarSlot& slot = acc.registrar_countries_[ParseRestOfLine(fields)];
      slot.rows = rows;
      slot.country_unknown = unknown;
      reg_slot = &slot;
      year_slot = nullptr;
    } else if (key == "rcc") {
      if (reg_slot == nullptr) Malformed("rcc outside a reg block");
      const size_t count = ParseCount(fields, "rcc");
      reg_slot->countries[ParseRestOfLine(fields)] = count;
    } else if (key == "end") {
      saw_end = true;
    } else {
      Malformed("unknown key '" + key + "'");
    }
  }
  // The end marker guards against a truncated blob looking like a smaller
  // but valid state.
  if (!saw_end) Malformed("missing end marker");
  return acc;
}

size_t SurveyAccumulator::state_entries() const {
  size_t entries = privacy_registrars_.size() + privacy_services_.size() +
                   brand_counts_.size();
  for (const auto& [year, slot] : years_) {
    entries += 1 + slot.countries.size() + slot.registrars.size() +
               slot.dbl_countries.size() + slot.dbl_registrars.size();
  }
  for (const auto& [name, slot] : registrar_countries_) {
    entries += 1 + slot.countries.size();
  }
  return entries;
}

}  // namespace whoiscrf::survey
