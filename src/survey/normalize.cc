#include "survey/normalize.h"

#include "datagen/country_data.h"
#include "util/string_util.h"

namespace whoiscrf::survey {

std::string NormalizeRegistrarScan(const std::string& parsed_name,
                                   const datagen::RegistrarTable& registrars) {
  if (parsed_name.empty()) return {};
  for (size_t i = 0; i < registrars.size(); ++i) {
    const auto& info = registrars.info(i);
    if (util::ContainsIgnoreCase(parsed_name, info.short_name) ||
        util::ContainsIgnoreCase(info.name, parsed_name)) {
      return info.short_name;
    }
  }
  return parsed_name;  // unrecognized registrar: keep the raw name
}

std::string NormalizeCountryScan(const std::string& value) {
  const std::string_view trimmed = util::Trim(value);
  if (trimmed.empty()) return {};
  if (trimmed.size() == 2) {
    const std::string upper = util::ToUpper(trimmed);
    if (datagen::CountryIndex(upper) >= 0) return upper;
  }
  for (const auto& country : datagen::Countries()) {
    if (!country.name.empty() &&
        util::EqualsIgnoreCase(trimmed, country.name)) {
      return std::string(country.code);
    }
  }
  return {};  // unparseable -> unknown
}

SurveyNormalizer::SurveyNormalizer(const datagen::RegistrarTable& registrars)
    : registrars_(&registrars) {
  short_lower_.reserve(registrars.size());
  name_lower_.reserve(registrars.size());
  for (size_t i = 0; i < registrars.size(); ++i) {
    const auto& info = registrars.info(i);
    short_lower_.push_back(util::ToLower(info.short_name));
    name_lower_.push_back(util::ToLower(info.name));
  }
  // Exact-string fast path for the names the table itself prints. The
  // stored answer is computed by the reference scan so first-match-in-
  // table-order semantics survive (entry i's name can match entry j < i).
  for (size_t i = 0; i < registrars.size(); ++i) {
    const auto& info = registrars.info(i);
    for (const std::string& key :
         {util::ToLower(info.name), util::ToLower(info.short_name)}) {
      if (exact_.count(key)) continue;
      const std::string answer = NormalizeRegistrarScan(
          key.empty() ? std::string() : std::string(key), registrars);
      for (size_t j = 0; j < registrars.size(); ++j) {
        if (registrars.info(j).short_name == answer) {
          exact_.emplace(key, static_cast<int>(j));
          break;
        }
      }
    }
  }
  for (const auto& country : datagen::Countries()) {
    if (country.code.size() == 2) {
      // Stored verbatim: the scan compares the *upper-cased* input against
      // the table code exactly, so only codes already in upper case match.
      country_codes_.insert(std::string(country.code));
    }
    if (!country.name.empty()) {
      country_names_.emplace(util::ToLower(country.name),
                             std::string(country.code));
    }
  }
}

std::string SurveyNormalizer::NormalizeRegistrar(
    const std::string& parsed_name) const {
  if (parsed_name.empty()) return {};
  const std::string lower = util::ToLower(parsed_name);
  const auto hit = exact_.find(lower);
  if (hit != exact_.end()) {
    return registrars_->info(static_cast<size_t>(hit->second)).short_name;
  }
  for (size_t i = 0; i < short_lower_.size(); ++i) {
    if (lower.find(short_lower_[i]) != std::string::npos ||
        name_lower_[i].find(lower) != std::string::npos) {
      return registrars_->info(i).short_name;
    }
  }
  return parsed_name;
}

std::string SurveyNormalizer::NormalizeCountry(const std::string& value) const {
  const std::string_view trimmed = util::Trim(value);
  if (trimmed.empty()) return {};
  if (trimmed.size() == 2) {
    const std::string upper = util::ToUpper(trimmed);
    if (country_codes_.count(upper)) return upper;
  }
  const auto hit = country_names_.find(util::ToLower(trimmed));
  if (hit != country_names_.end()) return hit->second;
  return {};
}

}  // namespace whoiscrf::survey
