// Paper-scale survey runs (ROADMAP item 5a): one driver that streams a
// 10-100M-record TemporalCorpusGenerator corpus through the checkpointed
// parse pipeline into a sharded record store while folding every parsed
// record into a streaming SurveyAccumulator — the §6 census at the
// paper's 102M-record scale, on bounded memory.
//
// The pieces and why they compose safely:
//   * GeneratedRecordSource renders records one at a time (never a
//     materialized corpus) and Skips in O(1) on resume;
//   * ParseStreamToStore owns durability: the store, the quarantine, and
//     the checkpoint cursor;
//   * the accumulator snapshot rides inside the checkpoint's aux payload,
//     so cursor and survey state are atomically consistent — a killed run
//     resumed with `resume = true` reproduces the uninterrupted run's
//     store bytes AND survey tables exactly.
//
// The cascade stays out of this library: callers that want tiered
// dispatch (the CLI's `scale-run --cascade`) pass a parse_override, the
// same seam `parse --stream --cascade` uses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "datagen/temporal.h"
#include "survey/accumulator.h"
#include "whois/stream_checkpoint.h"
#include "whois/whois_parser.h"

namespace whoiscrf::survey {

struct ScaleRunOptions {
  std::string store_prefix;  // required: record store + checkpoint prefix
  uint64_t count = 1000000;  // records to stream (corpus positions 0..N)
  size_t threads = 0;        // parse workers; 0 = hardware concurrency
  size_t batch_records = 64;
  size_t queue_capacity = 8;
  // Scale runs favor a larger interval than parse --stream's 4096: at
  // millions of records per run, fsync cadence dominates checkpoint cost.
  uint64_t checkpoint_interval = 65536;
  uint64_t max_record_bytes = 0;
  uint64_t watchdog_timeout_ms = 0;
  bool resume = false;
  std::vector<std::string> brands;  // Table 4 orgs to track (may be empty)
  // Appended to the computed checkpoint input id. Callers fold anything
  // that changes parse results (training size, cascade on/off) in here so
  // a checkpoint cannot resume under a different parser configuration.
  std::string input_tag;
  // Optional tiered dispatch (see header comment).
  std::function<whois::ParsedWhois(const std::string& record,
                                   whois::ParseWorkspace& ws)>
      parse_override;
  // Observes every durable checkpoint (e.g. to journal run progress).
  std::function<void(const whois::StreamCheckpoint& cp)> on_checkpoint;
};

struct ScaleRunResult {
  SurveyAccumulator survey;          // the §6 aggregates over all records
  whois::StreamPipelineStats stats;  // this run only (post-skip)
  uint64_t records_stored = 0;       // total records in the finished store
  uint64_t skipped = 0;              // records resumed past via checkpoint
  uint64_t quarantined = 0;
  uint64_t checkpoints = 0;
  double run_seconds = 0.0;         // wall time of the streaming phase
  double generate_seconds = 0.0;    // reader-thread time inside Generate
  double checkpoint_seconds = 0.0;  // durability overhead (fsync + aux)
  double sustained_rps = 0.0;       // stats.records / run_seconds
  long peak_rss_kb = 0;             // process high-water mark after the run
};

// The checkpoint identity of a scale run: corpus parameters + count +
// the caller's input_tag. Two runs share a checkpoint iff they would
// generate and parse identical records.
std::string ScaleRunInputId(const datagen::TemporalCorpusGenerator& generator,
                            const ScaleRunOptions& options);

// Trains the parser a scale run uses: the first `train_count` thick
// records of the corpus (pre-drift era), bench-standard trainer settings.
whois::WhoisParser TrainScaleParser(
    const datagen::TemporalCorpusGenerator& generator, size_t train_count);

// Runs (or resumes) the scale run. Updates the whoiscrf_scale_* metrics
// (docs/observability.md) and throws on unrecoverable pipeline errors.
ScaleRunResult RunScaleRun(const whois::WhoisParser& parser,
                           const datagen::TemporalCorpusGenerator& generator,
                           const ScaleRunOptions& options);

// Small-corpus equivalence check: streams the first `count` records
// through both survey paths — the SurveyAccumulator and the in-memory
// SurveyDatabase + aggregates.h — with identical pipeline options, and
// compares every §6 aggregate exactly. Returns true when identical; on a
// mismatch *detail (optional) names the first differing aggregate.
bool CrossCheckSurveyPaths(const whois::WhoisParser& parser,
                           const datagen::TemporalCorpusGenerator& generator,
                           const whois::StreamPipelineOptions& pipeline,
                           uint64_t count, std::string* detail);

// Renders the §6 survey tables (creation-year histogram, top registrars,
// top registrant countries, privacy registrars/services, brand counts)
// as plain text.
std::string RenderScaleSurveyTables(const SurveyAccumulator& acc,
                                    size_t top_k);

// Process-lifetime peak RSS in KiB (getrusage ru_maxrss).
long ScaleRunPeakRssKb();

}  // namespace whoiscrf::survey
