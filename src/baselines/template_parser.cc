#include "baselines/template_parser.h"

#include <algorithm>
#include <map>
#include <set>

#include "baselines/rule_parser.h"
#include "text/line_splitter.h"
#include "text/separator.h"
#include "text/word_classes.h"
#include "util/string_util.h"

namespace whoiscrf::baselines {

namespace {

using whois::Level1Label;

// Signature of a record's format: its sorted set of normalized titles.
// Records from the same template family share a signature; distinct
// formats get distinct templates, mirroring per-registrar template files.
std::string Signature(const std::string& text) {
  std::set<std::string> titles;
  for (const text::Line& line : text::SplitRecord(text)) {
    const auto sep = text::FindSeparator(line.text);
    if (sep.has_value() && !sep->title.empty()) {
      titles.insert(RuleBasedParser::NormalizeTitle(sep->title));
    }
  }
  std::string out;
  for (const auto& t : titles) {
    out += t;
    out += '\x1f';
  }
  return out;
}

}  // namespace

TemplateBasedParser TemplateBasedParser::Build(
    const std::vector<whois::LabeledRecord>& records) {
  std::map<std::string, Template> by_signature;

  for (const whois::LabeledRecord& record : records) {
    record.Validate();
    Template& tpl = by_signature[Signature(record.text)];
    const auto lines = text::SplitRecord(record.text);
    std::vector<whois::Level2Label> subs;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (record.labels[i] == Level1Label::kRegistrant) {
        subs.push_back(
            record.sub_labels[i].value_or(whois::Level2Label::kOther));
      }
    }
    // Two same-length blocks with different layouts (name-first vs
    // org-first) make the count ambiguous; an empty sequence tombstones
    // it so parsing falls back to heuristics instead of guessing wrong
    // half the time.
    if (const auto sit = tpl.subs_by_count.find(subs.size());
        sit == tpl.subs_by_count.end()) {
      tpl.subs_by_count.emplace(subs.size(), std::move(subs));
    } else if (!sit->second.empty() && sit->second != subs) {
      sit->second.clear();
    }
    for (size_t i = 0; i < lines.size(); ++i) {
      const Level1Label label = record.labels[i];
      const auto sep = text::FindSeparator(lines[i].text);
      if (sep.has_value() && !sep->title.empty()) {
        const std::string key =
            RuleBasedParser::NormalizeTitle(sep->title);
        const auto [tit, _] =
            tpl.titles.emplace(key, Template::TitleEntry{label});
        // A titled registrant line's title names the exact sub-field
        // ("registrant name" -> kName); remember it so parsing can
        // sub-label titled lines without positional guessing.
        if (tit->second.label == Level1Label::kRegistrant &&
            tit->second.sub < 0) {
          tit->second.sub = static_cast<int8_t>(
              record.sub_labels[i].value_or(whois::Level2Label::kOther));
        }
        if (sep->value.empty()) tpl.headers.emplace(key, label);
      } else {
        const std::string key =
            RuleBasedParser::NormalizeTitle(lines[i].text);
        if (key.empty()) continue;
        // Per-record contact values (names, phones) are NOT template
        // structure; only fixed non-contact text is stored verbatim.
        if (label != Level1Label::kRegistrant &&
            label != Level1Label::kOther) {
          tpl.bare_lines.emplace(key, label);
        }
        // An untitled line acts as a header only when it STARTS a run of
        // same-label lines; block member lines must not become headers.
        const bool starts_block = i == 0 || lines[i].preceded_by_blank ||
                                  record.labels[i - 1] != label;
        if (starts_block && i + 1 < lines.size() &&
            record.labels[i + 1] == label) {
          tpl.headers.emplace(key, label);
        }
      }
    }
  }

  TemplateBasedParser parser;
  parser.templates_.reserve(by_signature.size());
  for (auto& [sig, tpl] : by_signature) {
    parser.signature_index_.emplace(
        sig, static_cast<int>(parser.templates_.size()));
    parser.templates_.push_back(std::move(tpl));
  }
  return parser;
}

bool TemplateBasedParser::Apply(
    const Template& tpl, const std::vector<text::Line>& lines,
    const std::vector<LineKey>& keys,
    std::vector<whois::Level1Label>& labels) const {
  labels.clear();
  labels.reserve(lines.size());
  // Plain flag+value instead of std::optional: GCC 12 issues a spurious
  // -Wmaybe-uninitialized through the optional's storage here.
  bool has_context = false;
  Level1Label context = Level1Label::kNull;

  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].preceded_by_blank) has_context = false;
    const LineKey& lk = keys[i];
    if (lk.titled) {
      auto it = tpl.titles.find(lk.key);
      if (it == tpl.titles.end()) {
        return false;  // unknown title: the template does not apply
      }
      labels.push_back(it->second.label);
      auto hit = tpl.headers.find(lk.key);
      if (hit != tpl.headers.end() && lk.value_empty) {
        has_context = true;
        context = hit->second;
      }
      continue;
    }
    auto hit = tpl.headers.find(lk.key);
    if (hit != tpl.headers.end()) {
      has_context = true;
      context = hit->second;
      labels.push_back(hit->second);
      continue;
    }
    if (has_context) {
      labels.push_back(context);
      continue;
    }
    auto bit = tpl.bare_lines.find(lk.key);
    if (bit != tpl.bare_lines.end()) {
      labels.push_back(bit->second);
      continue;
    }
    return false;  // untitled line the template cannot account for
  }
  return true;
}

TemplateBasedParser::Result TemplateBasedParser::Parse(
    std::string_view record_text) const {
  return Parse(text::SplitRecord(record_text));
}

TemplateBasedParser::Result TemplateBasedParser::Parse(
    const std::vector<text::Line>& lines) const {
  // Normalize every line once; template attempts below are pure hash
  // probes against these keys.
  std::vector<LineKey> keys;
  keys.reserve(lines.size());
  for (const text::Line& line : lines) {
    LineKey lk;
    const auto sep = text::FindSeparator(line.text);
    if (sep.has_value() && !sep->title.empty()) {
      lk.titled = true;
      lk.value_empty = sep->value.empty();
      lk.key = RuleBasedParser::NormalizeTitle(sep->title);
    } else {
      lk.key = RuleBasedParser::NormalizeTitle(line.text);
    }
    keys.push_back(std::move(lk));
  }

  Result result;
  const auto finish = [&result, &keys, &lines, this](int index) -> Result& {
    result.matched = true;
    result.template_index = index;
    const Template& tpl = templates_[static_cast<size_t>(index)];
    // Resolve each registrant line's sub-label: titled lines carry the
    // exact sub their title was learned with; untitled block lines take
    // their position in the sequence learned for a same-length block.
    // Any unresolvable line leaves registrant_subs empty — a partial
    // sub-labeling would misalign downstream extraction.
    std::vector<size_t> reg_lines;
    for (size_t i = 0; i < result.labels.size(); ++i) {
      if (result.labels[i] == Level1Label::kRegistrant) {
        reg_lines.push_back(i);
      }
    }
    if (reg_lines.empty()) return result;
    const auto seq = tpl.subs_by_count.find(reg_lines.size());
    std::vector<whois::Level2Label> subs;
    subs.reserve(reg_lines.size());
    for (size_t p = 0; p < reg_lines.size(); ++p) {
      int sub = -1;
      const LineKey& lk = keys[reg_lines[p]];
      if (lk.titled) {
        if (const auto it = tpl.titles.find(lk.key);
            it != tpl.titles.end()) {
          sub = it->second.sub;
        }
      }
      if (sub < 0 && seq != tpl.subs_by_count.end() &&
          !seq->second.empty()) {
        sub = static_cast<int>(seq->second[p]);
        // A positional sequence is a layout hypothesis — same-length
        // blocks can differ (an optional org line shifts everything).
        // Concrete content cues veto a hypothesis that contradicts the
        // line it labels: a person/org slot must not hold a street,
        // phone, or email, and an email slot must hold one. One vetoed
        // line rejects the whole sequence and the record falls back to
        // the heuristic guesses.
        using whois::Level2Label;
        const auto s = static_cast<Level2Label>(sub);
        const std::string_view raw = lines[reg_lines[p]].text;
        const std::string_view trimmed = util::Trim(raw);
        const auto words = util::SplitWhitespace(trimmed);
        const bool email_like =
            trimmed.find('@') != std::string_view::npos;
        const bool street_like =
            !words.empty() && util::IsDigits(words.front());
        const bool phone_like = !words.empty() &&
                                text::IsPhoneLike(trimmed) &&
                                !util::IsDigits(trimmed);
        const bool contact_slot =
            s == Level2Label::kName || s == Level2Label::kOrg;
        if ((contact_slot &&
             (street_like || phone_like || email_like)) ||
            (s == Level2Label::kName &&
             RuleBasedParser::LooksLikeOrgName(trimmed)) ||
            (s == Level2Label::kEmail && !email_like) ||
            (s != Level2Label::kEmail && email_like)) {
          sub = -1;
        }
      }
      if (sub < 0) return result;
      subs.push_back(static_cast<whois::Level2Label>(sub));
    }
    result.registrant_subs = std::move(subs);
    return result;
  };

  // Fast path: the record's exact title-set names one stored template.
  // Views into the keys, sorted and deduplicated in place, rebuild the
  // same signature Build() computed — without a per-record set of owned
  // strings (this runs for every record the cascade dispatches).
  std::vector<std::string_view> title_keys;
  title_keys.reserve(keys.size());
  size_t signature_bytes = 0;
  for (const LineKey& lk : keys) {
    if (lk.titled) {
      title_keys.push_back(lk.key);
      signature_bytes += lk.key.size() + 1;
    }
  }
  std::sort(title_keys.begin(), title_keys.end());
  title_keys.erase(std::unique(title_keys.begin(), title_keys.end()),
                   title_keys.end());
  std::string signature;
  signature.reserve(signature_bytes);
  for (const std::string_view t : title_keys) {
    signature += t;
    signature += '\x1f';
  }
  int indexed = -1;
  if (auto it = signature_index_.find(signature);
      it != signature_index_.end()) {
    indexed = it->second;
    if (Apply(templates_[static_cast<size_t>(indexed)], lines, keys,
              result.labels)) {
      return finish(indexed);
    }
  }
  // Slow path: a record with dropped or inherited-context lines can still
  // satisfy a template whose signature is a superset of its titles.
  for (size_t t = 0; t < templates_.size(); ++t) {
    if (static_cast<int>(t) == indexed) continue;  // already tried
    if (Apply(templates_[t], lines, keys, result.labels)) {
      return finish(static_cast<int>(t));
    }
  }
  return Result{};
}

}  // namespace whoiscrf::baselines
