#include "baselines/template_parser.h"

#include <algorithm>
#include <map>
#include <set>

#include "baselines/rule_parser.h"
#include "text/line_splitter.h"
#include "text/separator.h"
#include "util/string_util.h"

namespace whoiscrf::baselines {

namespace {

using whois::Level1Label;

// Signature of a record's format: its sorted set of normalized titles.
// Records from the same template family share a signature; distinct
// formats get distinct templates, mirroring per-registrar template files.
std::string Signature(const std::string& text) {
  std::set<std::string> titles;
  for (const text::Line& line : text::SplitRecord(text)) {
    const auto sep = text::FindSeparator(line.text);
    if (sep.has_value() && !sep->title.empty()) {
      titles.insert(RuleBasedParser::NormalizeTitle(sep->title));
    }
  }
  std::string out;
  for (const auto& t : titles) {
    out += t;
    out += '\x1f';
  }
  return out;
}

}  // namespace

TemplateBasedParser TemplateBasedParser::Build(
    const std::vector<whois::LabeledRecord>& records) {
  std::map<std::string, Template> by_signature;

  for (const whois::LabeledRecord& record : records) {
    record.Validate();
    Template& tpl = by_signature[Signature(record.text)];
    const auto lines = text::SplitRecord(record.text);
    for (size_t i = 0; i < lines.size(); ++i) {
      const Level1Label label = record.labels[i];
      const auto sep = text::FindSeparator(lines[i].text);
      if (sep.has_value() && !sep->title.empty()) {
        const std::string key =
            RuleBasedParser::NormalizeTitle(sep->title);
        tpl.titles.emplace(key, label);
        if (sep->value.empty()) tpl.headers.emplace(key, label);
      } else {
        const std::string key =
            RuleBasedParser::NormalizeTitle(lines[i].text);
        if (key.empty()) continue;
        // Per-record contact values (names, phones) are NOT template
        // structure; only fixed non-contact text is stored verbatim.
        if (label != Level1Label::kRegistrant &&
            label != Level1Label::kOther) {
          tpl.bare_lines.emplace(key, label);
        }
        // An untitled line acts as a header only when it STARTS a run of
        // same-label lines; block member lines must not become headers.
        const bool starts_block = i == 0 || lines[i].preceded_by_blank ||
                                  record.labels[i - 1] != label;
        if (starts_block && i + 1 < lines.size() &&
            record.labels[i + 1] == label) {
          tpl.headers.emplace(key, label);
        }
      }
    }
  }

  TemplateBasedParser parser;
  parser.templates_.reserve(by_signature.size());
  for (auto& [sig, tpl] : by_signature) {
    parser.templates_.push_back(std::move(tpl));
  }
  return parser;
}

TemplateBasedParser::Result TemplateBasedParser::Parse(
    std::string_view record_text) const {
  const auto lines = text::SplitRecord(record_text);

  for (size_t t = 0; t < templates_.size(); ++t) {
    const Template& tpl = templates_[t];
    std::vector<Level1Label> labels;
    labels.reserve(lines.size());
    // Plain flag+value instead of std::optional: GCC 12 issues a spurious
    // -Wmaybe-uninitialized through the optional's storage here.
    bool has_context = false;
    Level1Label context = Level1Label::kNull;
    bool ok = true;

    for (const text::Line& line : lines) {
      if (line.preceded_by_blank) has_context = false;
      const auto sep = text::FindSeparator(line.text);
      if (sep.has_value() && !sep->title.empty()) {
        const std::string key =
            RuleBasedParser::NormalizeTitle(sep->title);
        auto it = tpl.titles.find(key);
        if (it == tpl.titles.end()) {
          ok = false;  // unknown title: the template does not apply
          break;
        }
        labels.push_back(it->second);
        auto hit = tpl.headers.find(key);
        if (hit != tpl.headers.end() && sep->value.empty()) {
          has_context = true;
          context = hit->second;
        }
        continue;
      }
      const std::string key = RuleBasedParser::NormalizeTitle(line.text);
      auto hit = tpl.headers.find(key);
      if (hit != tpl.headers.end()) {
        has_context = true;
        context = hit->second;
        labels.push_back(hit->second);
        continue;
      }
      if (has_context) {
        labels.push_back(context);
        continue;
      }
      auto bit = tpl.bare_lines.find(key);
      if (bit != tpl.bare_lines.end()) {
        labels.push_back(bit->second);
        continue;
      }
      ok = false;  // untitled line the template cannot account for
      break;
    }

    if (ok) {
      Result result;
      result.matched = true;
      result.template_index = static_cast<int>(t);
      result.labels = std::move(labels);
      return result;
    }
  }
  return Result{};
}

}  // namespace whoiscrf::baselines
