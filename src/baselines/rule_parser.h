// Rule-based baseline parser (paper §2.3 "Rule-based" and §4.2).
//
// The parser mirrors how tools like pythonwhois and the authors' own
// ground-truth labeler work:
//   * learned *title rules*: an exact normalized field title maps to a
//     label ("registrant name" -> registrant/name), harvested from labeled
//     records;
//   * learned *header rules*: a bare block header ("Registrant:") sets a
//     context that untitled continuation lines inherit;
//   * built-in *pattern rules*: keyword and word-class heuristics
//     ("...@... value on an untitled line is an email", "a line of legalese
//     keywords is null"). Per §5.1, pattern rules "cannot be rolled back".
//
// RollBack() reproduces the paper's §5.1 handicapping: it retains only the
// learned rules that fire on a given training subset, modeling a rule base
// that was only ever developed against those records.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/line_splitter.h"
#include "whois/record.h"

namespace whoiscrf::baselines {

// Provenance of one LabelLines pass: how many lines were decided by which
// kind of rule. The cascade (src/cascade/) reads these as a confidence
// signal — a record labeled mostly by exact learned rules is one the rule
// base was effectively developed against, while keyword guesses and
// fallbacks mark extrapolation the CRF should double-check.
struct RuleLabelStats {
  size_t labeled_lines = 0;  // lines labeled (== labels.size())
  size_t learned_hits = 0;   // exact title / header / bare-line rule hits
  size_t context_hits = 0;   // untitled lines inheriting a block context
  size_t keyword_hits = 0;   // keyword fallback guesses (titled or header)
  size_t fallback_lines = 0; // word-class/legalese heuristics or default
  size_t unknown_titles = 0; // titled lines no learned rule recognized

  // Fraction of lines decided by learned rules or contexts they set up —
  // the rule parser's self-confidence in [0, 1].
  double LearnedCoverage() const {
    return labeled_lines == 0
               ? 0.0
               : static_cast<double>(learned_hits + context_hits) /
                     static_cast<double>(labeled_lines);
  }
};

class RuleBasedParser {
 public:
  // Builds the full rule base from a labeled corpus (the analogue of the
  // authors' best rule-based parser, iterated until it labels its
  // development corpus perfectly).
  static RuleBasedParser Build(const std::vector<whois::LabeledRecord>& records);

  // Returns a parser retaining only the learned rules needed to label
  // `records` (plus all pattern rules).
  RuleBasedParser RollBack(
      const std::vector<whois::LabeledRecord>& records) const;

  // Labels every labeled line of a record. With `stats`, also reports the
  // per-line rule provenance (the cascade's confidence gate input). The
  // pre-split overload skips re-splitting when the caller already holds the
  // record's lines.
  std::vector<whois::Level1Label> LabelLines(
      std::string_view text, RuleLabelStats* stats = nullptr) const;
  std::vector<whois::Level1Label> LabelLines(
      const std::vector<text::Line>& lines,
      RuleLabelStats* stats = nullptr) const;

  // Level-2 subfield guesses for every line labeled `registrant`: title
  // rules where known, keyword and address heuristics otherwise. Returned
  // in registrant-line order (size == count of kRegistrant in `labels`),
  // the shape whois::ExtractFields takes. Shared by Parse and the
  // cascade's cheap tiers.
  std::vector<whois::Level2Label> RegistrantSubLabels(
      const std::vector<text::Line>& lines,
      const std::vector<whois::Level1Label>& labels) const;

  // Full parse: level-1 labels plus registrant field extraction, for the
  // §2.3 registrant-accuracy comparison.
  whois::ParsedWhois Parse(std::string_view text) const;

  size_t num_title_rules() const { return title_rules_.size(); }
  size_t num_header_rules() const { return header_rules_.size(); }
  size_t num_bare_rules() const { return bare_rules_.size(); }

  // Normalization applied to titles before rule lookup (lower-case,
  // collapse whitespace, strip non-alphanumerics at the edges).
  static std::string NormalizeTitle(std::string_view title);

  // Does this value look like an organization rather than a person? True
  // when the last word is a corporate designator ("LLC", "GmbH",
  // "Ltd.", ...) — the pattern rule every WHOIS parser grows for the
  // name-vs-org split on untitled contact lines. Shared with the template
  // tier, which uses it to cross-check positional sub-label sequences.
  static bool LooksLikeOrgName(std::string_view value);

 private:
  struct TitleRule {
    whois::Level1Label label;
    std::optional<whois::Level2Label> sub;
  };

  // Exact-title rules ("registrant name" -> registrant/name).
  std::unordered_map<std::string, TitleRule> title_rules_;
  // Block-header rules ("registrant" -> registrant block context).
  std::unordered_map<std::string, whois::Level1Label> header_rules_;
  // Exact-line rules for untitled fixed text (boilerplate sentences,
  // literal section banners) -> label. Only non-contact labels are learned
  // this way; contact lines vary per record and are handled by context.
  std::unordered_map<std::string, whois::Level1Label> bare_rules_;
};

}  // namespace whoiscrf::baselines
