// Rule-based baseline parser (paper §2.3 "Rule-based" and §4.2).
//
// The parser mirrors how tools like pythonwhois and the authors' own
// ground-truth labeler work:
//   * learned *title rules*: an exact normalized field title maps to a
//     label ("registrant name" -> registrant/name), harvested from labeled
//     records;
//   * learned *header rules*: a bare block header ("Registrant:") sets a
//     context that untitled continuation lines inherit;
//   * built-in *pattern rules*: keyword and word-class heuristics
//     ("...@... value on an untitled line is an email", "a line of legalese
//     keywords is null"). Per §5.1, pattern rules "cannot be rolled back".
//
// RollBack() reproduces the paper's §5.1 handicapping: it retains only the
// learned rules that fire on a given training subset, modeling a rule base
// that was only ever developed against those records.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "whois/record.h"

namespace whoiscrf::baselines {

class RuleBasedParser {
 public:
  // Builds the full rule base from a labeled corpus (the analogue of the
  // authors' best rule-based parser, iterated until it labels its
  // development corpus perfectly).
  static RuleBasedParser Build(const std::vector<whois::LabeledRecord>& records);

  // Returns a parser retaining only the learned rules needed to label
  // `records` (plus all pattern rules).
  RuleBasedParser RollBack(
      const std::vector<whois::LabeledRecord>& records) const;

  // Labels every labeled line of a record.
  std::vector<whois::Level1Label> LabelLines(std::string_view text) const;

  // Full parse: level-1 labels plus registrant field extraction, for the
  // §2.3 registrant-accuracy comparison.
  whois::ParsedWhois Parse(std::string_view text) const;

  size_t num_title_rules() const { return title_rules_.size(); }
  size_t num_header_rules() const { return header_rules_.size(); }
  size_t num_bare_rules() const { return bare_rules_.size(); }

  // Normalization applied to titles before rule lookup (lower-case,
  // collapse whitespace, strip non-alphanumerics at the edges).
  static std::string NormalizeTitle(std::string_view title);

 private:
  struct TitleRule {
    whois::Level1Label label;
    std::optional<whois::Level2Label> sub;
  };

  // Exact-title rules ("registrant name" -> registrant/name).
  std::unordered_map<std::string, TitleRule> title_rules_;
  // Block-header rules ("registrant" -> registrant block context).
  std::unordered_map<std::string, whois::Level1Label> header_rules_;
  // Exact-line rules for untitled fixed text (boilerplate sentences,
  // literal section banners) -> label. Only non-contact labels are learned
  // this way; contact lines vary per record and are handled by context.
  std::unordered_map<std::string, whois::Level1Label> bare_rules_;
};

}  // namespace whoiscrf::baselines
