#include "baselines/rule_parser.h"

#include <cctype>
#include <map>

#include "text/line_splitter.h"
#include "text/separator.h"
#include "text/word_classes.h"
#include "util/string_util.h"
#include "whois/whois_parser.h"

namespace whoiscrf::baselines {

namespace {

using whois::Level1Label;
using whois::Level2Label;

bool TitleContains(const std::string& title, std::string_view word) {
  return title.find(word) != std::string::npos;
}

// Keyword fallback on a field title; the "general series of rules" (§2.3)
// that gives rule-based parsers their residual coverage. Like the regex
// rules of pythonwhois, these key on the LEADING title word ("Registrant
// ..." / "Creation ..."), which is why unfamiliar schemas that lead with a
// different word ("Domain Create Date") defeat them (§5.2, Table 2).
std::optional<Level1Label> TitleKeywordLabel(const std::string& full_title) {
  const auto words = util::SplitWhitespace(full_title);
  const std::string title =
      words.empty() ? std::string() : std::string(words.front());
  if (TitleContains(title, "registrant") || TitleContains(title, "owner") ||
      TitleContains(title, "holder")) {
    return Level1Label::kRegistrant;
  }
  if (TitleContains(title, "admin") || TitleContains(title, "tech") ||
      TitleContains(title, "billing")) {
    return Level1Label::kOther;
  }
  if (TitleContains(title, "creat") || TitleContains(title, "updat") ||
      TitleContains(title, "expir") || TitleContains(title, "modif") ||
      TitleContains(title, "renew") || TitleContains(title, "date") ||
      TitleContains(title, "paid")) {
    return Level1Label::kDate;
  }
  if (TitleContains(title, "registrar") || TitleContains(title, "sponsor") ||
      TitleContains(title, "provider") || TitleContains(title, "reseller") ||
      TitleContains(title, "whois server") ||
      TitleContains(title, "referral")) {
    return Level1Label::kRegistrar;
  }
  if (TitleContains(title, "domain") || TitleContains(title, "server") ||
      TitleContains(title, "status") || TitleContains(title, "dnssec") ||
      TitleContains(title, "nserver") || TitleContains(title, "host") ||
      TitleContains(title, "dns")) {
    return Level1Label::kDomain;
  }
  return std::nullopt;
}

std::optional<Level2Label> TitleKeywordSub(const std::string& title) {
  if (TitleContains(title, "email") || TitleContains(title, "e-mail") ||
      TitleContains(title, "mail")) {
    return Level2Label::kEmail;
  }
  if (TitleContains(title, "fax")) return Level2Label::kFax;
  if (TitleContains(title, "phone") || TitleContains(title, "tel")) {
    return Level2Label::kPhone;
  }
  if (TitleContains(title, "org") || TitleContains(title, "company") ||
      TitleContains(title, "entity")) {
    return Level2Label::kOrg;
  }
  if (TitleContains(title, "street") || TitleContains(title, "address")) {
    return Level2Label::kStreet;
  }
  if (TitleContains(title, "city")) return Level2Label::kCity;
  if (TitleContains(title, "state") || TitleContains(title, "province")) {
    return Level2Label::kState;
  }
  if (TitleContains(title, "postal") || TitleContains(title, "zip") ||
      TitleContains(title, "postcode")) {
    return Level2Label::kPostcode;
  }
  if (TitleContains(title, "country")) return Level2Label::kCountry;
  if (TitleContains(title, "id") || TitleContains(title, "hdl")) {
    return Level2Label::kId;
  }
  if (TitleContains(title, "name")) return Level2Label::kName;
  return std::nullopt;
}

// Untitled-line fallback: word-class and legalese heuristics.
Level1Label UntitledFallback(const text::Line& line) {
  const std::string lower = util::ToLower(util::Trim(line.text));
  if (line.starts_with_symbol) return Level1Label::kNull;
  int legalese = 0;
  for (std::string_view w :
       {"whois", "terms", "database", "information", "query", "please",
        "copyright", "policy", "prohibited", "registration", "provided",
        "service", "notice", "agree", "lawful", "visit"}) {
    if (lower.find(w) != std::string::npos) ++legalese;
  }
  if (legalese >= 2) return Level1Label::kNull;
  for (std::string_view w : util::SplitWhitespace(lower)) {
    if (text::IsDateLike(w)) return Level1Label::kDate;
  }
  return Level1Label::kNull;
}

// Sub-field guess for an untitled line inside a registrant block — the
// address heuristics every rule-based parser grows (§4.2's "a large number
// of special case rules").
Level2Label GuessRegistrantSub(const text::Line& line, int position_in_block) {
  const std::string trimmed(util::Trim(line.text));
  const auto words = util::SplitWhitespace(trimmed);
  for (std::string_view w : words) {
    if (text::IsEmail(w)) return Level2Label::kEmail;
  }
  if (!words.empty() && text::IsPhoneLike(trimmed) &&
      !util::IsDigits(trimmed)) {
    return Level2Label::kPhone;
  }
  // "City, ST 12345" / "City, State" composite.
  if (trimmed.find(',') != std::string::npos) {
    for (std::string_view w : words) {
      if (text::IsFiveDigit(w) || text::IsCountryCode(std::string(w))) {
        return Level2Label::kCity;
      }
    }
  }
  // Street: starts with a house number.
  if (!words.empty() && util::IsDigits(words.front())) {
    return Level2Label::kStreet;
  }
  // Organization before the country check: "Granite Holdings" is two
  // capitalized alpha words just like a country name, but the corporate
  // designator decides.
  if (RuleBasedParser::LooksLikeOrgName(trimmed)) {
    return Level2Label::kOrg;
  }
  // Country names are short all-alpha lines late in the block.
  if (words.size() <= 3 && position_in_block >= 3) {
    bool all_alpha = true;
    for (std::string_view w : words) {
      for (char c : w) {
        if (!std::isalpha(static_cast<unsigned char>(c))) all_alpha = false;
      }
    }
    if (all_alpha) return Level2Label::kCountry;
  }
  // The holder's name opens the block — possibly after a header line
  // and/or an organization line, both recognized above, so the window is
  // the first three positions. Streets and cities there are already
  // claimed by the digit/composite rules; a stray "Suite 589" mislabeled
  // kName is harmless because extraction keeps the first name seen.
  if (position_in_block <= 2) return Level2Label::kName;
  return Level2Label::kOther;
}

}  // namespace

std::string RuleBasedParser::NormalizeTitle(std::string_view title) {
  std::string out;
  out.reserve(title.size());
  bool last_space = true;
  for (char c : title) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      out += static_cast<char>(std::tolower(uc));
      last_space = false;
    } else if (!last_space) {
      out += ' ';
      last_space = true;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool RuleBasedParser::LooksLikeOrgName(std::string_view value) {
  const std::string_view trimmed = util::Trim(value);
  if (trimmed.empty()) return false;
  const size_t pos = trimmed.find_last_of(" \t");
  std::string last = util::ToLower(
      pos == std::string_view::npos ? trimmed : trimmed.substr(pos + 1));
  while (!last.empty() && (last.back() == '.' || last.back() == ',')) {
    last.pop_back();
  }
  static constexpr std::string_view kDesignators[] = {
      "llc",      "inc",      "corp",     "co",   "group", "holdings",
      "ventures", "solutions", "media",   "consulting",    "gmbh",
      "ag",       "kg",       "sarl",     "sas",  "sa",    "k.k",
      "kk",       "ltd",      "limited",  "plc"};
  for (const std::string_view d : kDesignators) {
    if (last == d) return true;
  }
  return false;
}

RuleBasedParser RuleBasedParser::Build(
    const std::vector<whois::LabeledRecord>& records) {
  // Majority vote per key so noisy collisions resolve deterministically.
  std::map<std::string,
           std::map<std::pair<int, int>, int>>
      title_votes;  // key -> ((l1, l2+1) -> count); l2 -1 encoded as 0
  std::map<std::string, std::map<int, int>> header_votes;
  std::map<std::string, std::map<int, int>> bare_votes;

  for (const whois::LabeledRecord& record : records) {
    record.Validate();
    const auto lines = text::SplitRecord(record.text);
    for (size_t i = 0; i < lines.size(); ++i) {
      const auto sep = text::FindSeparator(lines[i].text);
      const Level1Label l1 = record.labels[i];
      if (sep.has_value() && !sep->title.empty()) {
        const std::string key = NormalizeTitle(sep->title);
        if (key.empty()) continue;
        const int sub_code =
            record.sub_labels[i].has_value()
                ? static_cast<int>(*record.sub_labels[i]) + 1
                : 0;
        if (sep->value.empty()) {
          header_votes[key][static_cast<int>(l1)]++;
        } else {
          title_votes[key][{static_cast<int>(l1), sub_code}]++;
        }
      } else {
        const std::string key = NormalizeTitle(lines[i].text);
        if (key.empty()) continue;
        // Candidate block-header: an untitled line that *starts* a run of
        // same-label lines (block member lines like a registrant's name
        // repeat across blocks and must not become headers).
        const bool starts_block = i == 0 || lines[i].preceded_by_blank ||
                                  record.labels[i - 1] != l1;
        if (starts_block && i + 1 < lines.size() &&
            record.labels[i + 1] == l1 &&
            (l1 == Level1Label::kRegistrant || l1 == Level1Label::kOther ||
             l1 == Level1Label::kDomain)) {
          header_votes[key][static_cast<int>(l1)]++;
        } else if (l1 == Level1Label::kNull || l1 == Level1Label::kDomain ||
                   l1 == Level1Label::kDate ||
                   l1 == Level1Label::kRegistrar) {
          // Fixed untitled text (boilerplate sentences, banners).
          bare_votes[key][static_cast<int>(l1)]++;
        }
      }
    }
  }

  RuleBasedParser parser;
  for (const auto& [key, votes] : title_votes) {
    std::pair<int, int> best{};
    int best_count = -1;
    for (const auto& [labels, count] : votes) {
      if (count > best_count) {
        best = labels;
        best_count = count;
      }
    }
    TitleRule rule;
    rule.label = static_cast<Level1Label>(best.first);
    rule.sub = best.second == 0
                   ? std::nullopt
                   : std::optional<Level2Label>(
                         static_cast<Level2Label>(best.second - 1));
    parser.title_rules_.emplace(key, rule);
  }
  auto majority = [](const std::map<int, int>& votes) {
    int best_label = 0;
    int best_count = -1;
    for (const auto& [label, count] : votes) {
      if (count > best_count) {
        best_label = label;
        best_count = count;
      }
    }
    return static_cast<Level1Label>(best_label);
  };
  for (const auto& [key, votes] : header_votes) {
    parser.header_rules_.emplace(key, majority(votes));
  }
  for (const auto& [key, votes] : bare_votes) {
    if (parser.header_rules_.count(key)) continue;  // headers take priority
    parser.bare_rules_.emplace(key, majority(votes));
  }
  return parser;
}

RuleBasedParser RuleBasedParser::RollBack(
    const std::vector<whois::LabeledRecord>& records) const {
  RuleBasedParser reduced;
  for (const whois::LabeledRecord& record : records) {
    for (const text::Line& line : text::SplitRecord(record.text)) {
      const auto sep = text::FindSeparator(line.text);
      if (sep.has_value() && !sep->title.empty()) {
        const std::string key = NormalizeTitle(sep->title);
        auto it = title_rules_.find(key);
        if (it != title_rules_.end()) reduced.title_rules_.insert(*it);
        auto hit = header_rules_.find(key);
        if (hit != header_rules_.end()) reduced.header_rules_.insert(*hit);
      } else {
        const std::string key = NormalizeTitle(line.text);
        auto hit = header_rules_.find(key);
        if (hit != header_rules_.end()) reduced.header_rules_.insert(*hit);
        auto bit = bare_rules_.find(key);
        if (bit != bare_rules_.end()) reduced.bare_rules_.insert(*bit);
      }
    }
  }
  return reduced;
}

std::vector<Level1Label> RuleBasedParser::LabelLines(
    std::string_view record_text, RuleLabelStats* stats) const {
  return LabelLines(text::SplitRecord(record_text), stats);
}

std::vector<Level1Label> RuleBasedParser::LabelLines(
    const std::vector<text::Line>& lines, RuleLabelStats* stats) const {
  std::vector<Level1Label> out;
  out.reserve(lines.size());
  RuleLabelStats local;

  // Plain flag+value instead of std::optional (GCC 12 spurious
  // -Wmaybe-uninitialized through the optional's storage).
  bool has_context = false;
  Level1Label context = Level1Label::kNull;
  for (const text::Line& line : lines) {
    if (line.preceded_by_blank) has_context = false;

    const auto sep = text::FindSeparator(line.text);
    if (sep.has_value() && !sep->title.empty()) {
      const std::string key = NormalizeTitle(sep->title);
      auto it = title_rules_.find(key);
      if (it != title_rules_.end() && !sep->value.empty()) {
        ++local.learned_hits;
        out.push_back(it->second.label);
        continue;
      }
      auto hit = header_rules_.find(key);
      if (hit != header_rules_.end() && sep->value.empty()) {
        has_context = true;
        context = hit->second;
        ++local.learned_hits;
        out.push_back(hit->second);
        continue;
      }
      if (it != title_rules_.end()) {  // known title, empty value
        ++local.learned_hits;
        out.push_back(it->second.label);
        continue;
      }
      // Unknown title: keyword fallback.
      ++local.unknown_titles;
      if (auto guess = TitleKeywordLabel(key)) {
        if (sep->value.empty() &&
            (*guess == Level1Label::kRegistrant ||
             *guess == Level1Label::kOther)) {
          has_context = true;
          context = *guess;
        }
        ++local.keyword_hits;
        out.push_back(*guess);
        continue;
      }
      if (has_context) {
        ++local.context_hits;
      } else {
        ++local.fallback_lines;
      }
      out.push_back(has_context ? context : Level1Label::kNull);
      continue;
    }

    // No title.
    const std::string key = NormalizeTitle(line.text);
    auto hit = header_rules_.find(key);
    if (hit != header_rules_.end()) {
      has_context = true;
      context = hit->second;
      ++local.learned_hits;
      out.push_back(hit->second);
      continue;
    }
    auto bit = bare_rules_.find(key);
    if (bit != bare_rules_.end()) {
      ++local.learned_hits;
      out.push_back(bit->second);
      continue;
    }
    if (has_context) {
      ++local.context_hits;
      out.push_back(context);
      continue;
    }
    if (auto guess = TitleKeywordLabel(key);
        guess.has_value() && util::SplitWhitespace(key).size() <= 4) {
      // Short keyword-bearing header line ("Administrative Contact").
      if (*guess == Level1Label::kRegistrant ||
          *guess == Level1Label::kOther) {
        has_context = true;
        context = *guess;
      }
      ++local.keyword_hits;
      out.push_back(*guess);
      continue;
    }
    ++local.fallback_lines;
    out.push_back(UntitledFallback(line));
  }
  local.labeled_lines = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<Level2Label> RuleBasedParser::RegistrantSubLabels(
    const std::vector<text::Line>& lines,
    const std::vector<Level1Label>& labels) const {
  // Title-rule subs where known, address heuristics otherwise.
  std::vector<Level2Label> subs;
  int block_pos = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (labels[i] != Level1Label::kRegistrant) {
      block_pos = 0;
      continue;
    }
    const auto sep = text::FindSeparator(lines[i].text);
    std::optional<Level2Label> sub;
    if (sep.has_value() && !sep->title.empty()) {
      const std::string key = NormalizeTitle(sep->title);
      auto it = title_rules_.find(key);
      if (it != title_rules_.end() && it->second.sub.has_value()) {
        sub = it->second.sub;
      } else {
        sub = TitleKeywordSub(key);
      }
    }
    if (!sub.has_value()) {
      sub = GuessRegistrantSub(lines[i], block_pos);
    }
    subs.push_back(*sub);
    ++block_pos;
  }
  return subs;
}

whois::ParsedWhois RuleBasedParser::Parse(std::string_view record_text) const {
  whois::ParsedWhois parsed;
  const auto lines = text::SplitRecord(record_text);
  parsed.line_labels = LabelLines(lines);
  const std::vector<Level2Label> subs =
      RegistrantSubLabels(lines, parsed.line_labels);
  whois::ExtractFields(lines, parsed.line_labels, subs, parsed);
  return parsed;
}

}  // namespace whoiscrf::baselines
