// Template-based baseline parser (paper §2.3 "Template-based";
// deft-whois / Ruby whois analogue).
//
// A template is the exact set of field titles (plus block headers) one
// registrar's format uses, with the label each title maps to. Parsing
// succeeds only when every titled line of the record resolves against a
// single stored template; any unknown title — e.g. after a registrar
// renames one field — fails the whole record, which is precisely the
// fragility the paper measures ("changing a single word in the schema or
// reordering field elements can easily lead to parsing failure").
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "whois/record.h"

namespace whoiscrf::baselines {

class TemplateBasedParser {
 public:
  struct Result {
    bool matched = false;              // did any template apply cleanly?
    int template_index = -1;           // which one
    std::vector<whois::Level1Label> labels;  // valid only when matched
  };

  // Learns one template per distinct title-set in the labeled corpus
  // (the analogue of deft-whois's 575 hand-written template files).
  static TemplateBasedParser Build(
      const std::vector<whois::LabeledRecord>& records);

  // Attempts to parse; fails closed when no template covers the record.
  Result Parse(std::string_view record_text) const;

  size_t num_templates() const { return templates_.size(); }

 private:
  struct Template {
    // Exact normalized titles -> labels for titled lines.
    std::unordered_map<std::string, whois::Level1Label> titles;
    // Exact normalized whole-line keys -> labels for untitled lines
    // (headers, boilerplate, and block members seen during construction).
    std::unordered_map<std::string, whois::Level1Label> bare_lines;
    // Label contexts that untitled lines inherit inside blocks.
    std::unordered_map<std::string, whois::Level1Label> headers;
  };

  std::vector<Template> templates_;
};

}  // namespace whoiscrf::baselines
