// Template-based baseline parser (paper §2.3 "Template-based";
// deft-whois / Ruby whois analogue).
//
// A template is the exact set of field titles (plus block headers) one
// registrar's format uses, with the label each title maps to. Parsing
// succeeds only when every titled line of the record resolves against a
// single stored template; any unknown title — e.g. after a registrar
// renames one field — fails the whole record, which is precisely the
// fragility the paper measures ("changing a single word in the schema or
// reordering field elements can easily lead to parsing failure").
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/line_splitter.h"
#include "whois/record.h"

namespace whoiscrf::baselines {

class TemplateBasedParser {
 public:
  struct Result {
    bool matched = false;              // did any template apply cleanly?
    int template_index = -1;           // which one
    std::vector<whois::Level1Label> labels;  // valid only when matched
    // Level-2 labels for the record's registrant lines, in registrant-line
    // order, when every one of them is resolvable from the template:
    // titled lines carry the sub-label their title was learned with (the
    // title is the field's schema, so this is exact), and untitled block
    // lines take the position in the sub-label sequence learned for a
    // block of the same line count. Empty when any line is unresolvable;
    // callers then fall back to their own heuristics.
    std::vector<whois::Level2Label> registrant_subs;
  };

  // Learns one template per distinct title-set in the labeled corpus
  // (the analogue of deft-whois's 575 hand-written template files).
  static TemplateBasedParser Build(
      const std::vector<whois::LabeledRecord>& records);

  // Attempts to parse; fails closed when no template covers the record.
  // Line keys are normalized once per record (not once per template
  // attempt), and a record whose exact title-set matches a stored
  // template's signature tries that template first — the common case in a
  // cascade dispatch loop is then one hash lookup plus one linear
  // application. When several templates apply cleanly, which one is
  // reported is unspecified. The pre-split overload skips re-splitting.
  Result Parse(std::string_view record_text) const;
  Result Parse(const std::vector<text::Line>& lines) const;

  size_t num_templates() const { return templates_.size(); }

 private:
  struct Template {
    struct TitleEntry {
      whois::Level1Label label;
      // Learned level-2 sub-label for titled registrant lines ("registrant
      // name" -> kName), exact because the title *is* the field's schema;
      // -1 when the title is not a registrant field.
      int8_t sub = -1;
    };
    // Exact normalized titles -> labels for titled lines.
    std::unordered_map<std::string, TitleEntry> titles;
    // Exact normalized whole-line keys -> labels for untitled lines
    // (headers, boilerplate, and block members seen during construction).
    std::unordered_map<std::string, whois::Level1Label> bare_lines;
    // Label contexts that untitled lines inherit inside blocks.
    std::unordered_map<std::string, whois::Level1Label> headers;
    // Registrant-block sub-label sequences by block line count (block
    // layout is format structure, but blocks vary in length — optional
    // org, second street line — so each observed length keeps the first
    // sequence that exhibited it). A length seen with two *different*
    // sequences is ambiguous and tombstoned with an empty vector:
    // guessing between layouts is worse than falling back to heuristics.
    std::unordered_map<size_t, std::vector<whois::Level2Label>>
        subs_by_count;
  };

  // One line of a record, normalized once for all template attempts.
  struct LineKey {
    bool titled = false;
    bool value_empty = false;
    std::string key;  // normalized title (titled) or whole line (untitled)
  };

  bool Apply(const Template& tpl, const std::vector<text::Line>& lines,
             const std::vector<LineKey>& keys,
             std::vector<whois::Level1Label>& labels) const;

  std::vector<Template> templates_;
  // Exact title-set signature -> index into templates_, for the O(1)
  // dispatch fast path. Records with missing/extra lines still fall back
  // to the linear scan below, so coverage is unchanged.
  std::unordered_map<std::string, int> signature_index_;
};

}  // namespace whoiscrf::baselines
