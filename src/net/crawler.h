// The WHOIS crawler (§4.1).
//
// For each .com domain the crawl is a two-step process (§2.2): query the
// thin registry, extract the sponsoring registrar's WHOIS server from the
// referral, then query that server for the thick record.
//
// Rate limits are unpublished, so the crawler uses the paper's dynamic
// inference: it tracks its own query rate per server, and when a server
// stops returning valid data it records the observed rate as that server's
// limit and thereafter stays safely below it. Multiple source addresses
// provide parallel vantage points, and each query is retried from up to
// three different sources before being declared failed.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/clock.h"
#include "net/transport.h"

namespace whoiscrf::obs {
class Counter;
class Histogram;
}  // namespace whoiscrf::obs

namespace whoiscrf::net {

struct CrawlerOptions {
  std::string registry_server = "whois.verisign-grs.com";
  std::vector<std::string> source_ips = {"198.51.100.1", "198.51.100.2",
                                         "198.51.100.3"};
  uint64_t assumed_window_ms = 60'000;  // window used for rate accounting
  double safety_factor = 0.75;          // stay at this fraction of a limit
  int max_attempts = 3;                 // distinct sources tried per query
  uint64_t source_cooldown_ms = 120'000;  // back-off after tripping a limit
  // Per-server limits known before the first query — typically replayed
  // from a crawl journal, so a resumed crawl paces correctly from query
  // one instead of re-tripping every limit it already paid to learn.
  std::map<std::string, uint32_t> initial_limits;
};

struct CrawlResult {
  enum class Status {
    kOk,        // thin + thick both retrieved
    kNoMatch,   // registry says the domain does not exist (expired etc.)
    kThinOnly,  // thick lookup failed (blocked / unreachable registrar)
    kFailed,    // even the thin lookup failed
  };
  std::string domain;
  Status status = Status::kFailed;
  std::string thin;
  std::string thick;
  std::string registrar_server;
  int attempts = 0;
};

// Stable lowercase name for a crawl status ("ok", "no_match", "thin_only",
// "failed") — used for metric labels and the crawl journal.
const char* CrawlStatusName(CrawlResult::Status status);
// Inverse of CrawlStatusName; returns false on an unknown name.
bool ParseCrawlStatus(std::string_view name, CrawlResult::Status& out);

// Read-only snapshot of this crawler's activity. Counts are derived from
// the process-wide obs::Registry metrics (`whoiscrf_crawl_*`, see
// docs/observability.md) as a delta since the crawler was constructed, so
// the snapshot and the exported metrics can never disagree — there is one
// source of truth. The registry counters are thread-safe; the snapshot is
// consistent for the usual one-thread-per-crawler usage.
struct CrawlerStats {
  size_t ok = 0;
  size_t no_match = 0;
  size_t thin_only = 0;
  size_t failed = 0;
  size_t queries_sent = 0;
  size_t limit_hits = 0;  // responses judged rate-limited
  // Inferred per-server query limits (queries per window).
  std::map<std::string, uint32_t> inferred_limits;
};

class CrawlJournal;

class Crawler {
 public:
  Crawler(Network& network, Clock& clock, CrawlerOptions options = {});

  // Attaches a durability journal (not owned; may be null to detach):
  // every finished domain and every newly inferred rate limit is appended
  // to it, enabling crash/resume via CrawlJournal::Load.
  void SetJournal(CrawlJournal* journal) { journal_ = journal; }

  CrawlResult CrawlDomain(const std::string& domain);
  std::vector<CrawlResult> CrawlAll(const std::vector<std::string>& domains);

  CrawlerStats stats() const;

  // Pulls the registrar WHOIS referral out of a thin record ("Whois
  // Server: whois.godaddy.com"); empty when absent.
  static std::string ExtractWhoisServer(const std::string& thin_record);

 private:
  struct SourceServerState {
    std::deque<uint64_t> sent;            // timestamps within the window
    uint64_t cooldown_until_ms = 0;
  };
  struct ServerState {
    std::optional<uint32_t> inferred_limit;
  };

  // One rate-paced query with per-source rotation and retries. Returns the
  // body of the first valid-looking response, or nullopt.
  std::optional<std::string> PacedQuery(const std::string& server,
                                        const std::string& domain);

  // Heuristic: does this response body carry usable record data?
  static bool LooksValid(const QueryResult& result);

  void NoteSent(const std::string& server, const std::string& source);
  void NoteLimited(const std::string& server, const std::string& source);

  // Per-server query latency histogram, registered lazily on first query.
  obs::Histogram* LatencyHistogram(const std::string& server);

  Network& network_;
  Clock& clock_;
  CrawlerOptions options_;
  CrawlJournal* journal_ = nullptr;
  std::map<std::pair<std::string, std::string>, SourceServerState> pairs_;
  std::map<std::string, ServerState> servers_;
  size_t next_source_ = 0;

  // Registry counters (process-wide; see docs/observability.md) plus the
  // values they held at construction, so stats() can report this
  // instance's delta.
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* limit_hits = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* no_match = nullptr;
    obs::Counter* thin_only = nullptr;
    obs::Counter* failed = nullptr;
  };
  struct MetricsBaseline {
    uint64_t queries = 0, limit_hits = 0;
    uint64_t ok = 0, no_match = 0, thin_only = 0, failed = 0;
  };
  Metrics metrics_;
  MetricsBaseline baseline_;
  std::map<std::string, obs::Histogram*> latency_hists_;
};

}  // namespace whoiscrf::net
