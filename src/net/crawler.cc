#include "net/crawler.h"

#include <algorithm>

#include "net/crawl_journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace whoiscrf::net {

namespace {

// Real (wall-clock) latency of one WHOIS query, sub-ms to minutes. The
// crawl clock may be simulated; latency is always measured on the steady
// clock so the histogram reflects actual transport cost.
const std::vector<double>& QueryLatencyBoundsMs() {
  static const std::vector<double> bounds = {0.1, 0.5,  1,    5,    10,   50,
                                             100, 500,  1000, 5000, 15000,
                                             60000};
  return bounds;
}

}  // namespace

const char* CrawlStatusName(CrawlResult::Status status) {
  switch (status) {
    case CrawlResult::Status::kOk:
      return "ok";
    case CrawlResult::Status::kNoMatch:
      return "no_match";
    case CrawlResult::Status::kThinOnly:
      return "thin_only";
    case CrawlResult::Status::kFailed:
      return "failed";
  }
  return "failed";
}

bool ParseCrawlStatus(std::string_view name, CrawlResult::Status& out) {
  for (CrawlResult::Status status :
       {CrawlResult::Status::kOk, CrawlResult::Status::kNoMatch,
        CrawlResult::Status::kThinOnly, CrawlResult::Status::kFailed}) {
    if (name == CrawlStatusName(status)) {
      out = status;
      return true;
    }
  }
  return false;
}

Crawler::Crawler(Network& network, Clock& clock, CrawlerOptions options)
    : network_(network), clock_(clock), options_(std::move(options)) {
  if (options_.source_ips.empty()) {
    options_.source_ips = {"198.51.100.1"};
  }
  obs::Registry& registry = obs::Registry::Global();
  metrics_.queries = registry.GetCounter(
      "whoiscrf_crawl_queries_total", "WHOIS queries sent (thin + thick)");
  metrics_.limit_hits = registry.GetCounter(
      "whoiscrf_crawl_limit_hits_total",
      "Responses judged rate-limited (triggering limit inference)");
  const char* help = "Crawled domains by final status";
  metrics_.ok = registry.GetCounter("whoiscrf_crawl_results_total", help,
                                    {{"status", "ok"}});
  metrics_.no_match = registry.GetCounter("whoiscrf_crawl_results_total",
                                          help, {{"status", "no_match"}});
  metrics_.thin_only = registry.GetCounter("whoiscrf_crawl_results_total",
                                           help, {{"status", "thin_only"}});
  metrics_.failed = registry.GetCounter("whoiscrf_crawl_results_total", help,
                                        {{"status", "failed"}});
  baseline_ = {metrics_.queries->Value(), metrics_.limit_hits->Value(),
               metrics_.ok->Value(),      metrics_.no_match->Value(),
               metrics_.thin_only->Value(), metrics_.failed->Value()};

  // Limits replayed from a previous run's journal: pace correctly from
  // the first query instead of re-tripping each server once.
  for (const auto& [server, limit] : options_.initial_limits) {
    servers_[server].inferred_limit = limit;
    registry
        .GetGauge("whoiscrf_crawl_inferred_limit",
                  "Inferred per-server query limit (queries per window)",
                  {{"server", server}})
        ->Set(limit);
  }
}

CrawlerStats Crawler::stats() const {
  CrawlerStats s;
  s.queries_sent = metrics_.queries->Value() - baseline_.queries;
  s.limit_hits = metrics_.limit_hits->Value() - baseline_.limit_hits;
  s.ok = metrics_.ok->Value() - baseline_.ok;
  s.no_match = metrics_.no_match->Value() - baseline_.no_match;
  s.thin_only = metrics_.thin_only->Value() - baseline_.thin_only;
  s.failed = metrics_.failed->Value() - baseline_.failed;
  for (const auto& [server, state] : servers_) {
    if (state.inferred_limit.has_value()) {
      s.inferred_limits[server] = *state.inferred_limit;
    }
  }
  return s;
}

obs::Histogram* Crawler::LatencyHistogram(const std::string& server) {
  auto it = latency_hists_.find(server);
  if (it == latency_hists_.end()) {
    it = latency_hists_
             .emplace(server,
                      obs::Registry::Global().GetHistogram(
                          "whoiscrf_crawl_query_latency_ms",
                          "Wall-clock latency of one WHOIS query",
                          QueryLatencyBoundsMs(), {{"server", server}}))
             .first;
  }
  return it->second;
}

std::string Crawler::ExtractWhoisServer(const std::string& thin_record) {
  for (std::string_view line : util::SplitLines(thin_record)) {
    const std::string lower = util::ToLower(line);
    const size_t pos = lower.find("whois server:");
    if (pos == std::string::npos) continue;
    return std::string(
        util::Trim(line.substr(pos + std::string_view("whois server:").size())));
  }
  return {};
}

bool Crawler::LooksValid(const QueryResult& result) {
  if (!result.connected) return false;
  const std::string_view body = util::Trim(result.body);
  if (body.empty()) return false;
  // Error banners servers emit when limiting; treat as invalid data.
  const std::string lower = util::ToLower(body.substr(0, 200));
  for (std::string_view marker :
       {"rate limit", "exceeded", "quota", "try again later",
        "queries per"}) {
    if (lower.find(marker) != std::string::npos) return false;
  }
  return true;
}

void Crawler::NoteSent(const std::string& server, const std::string& source) {
  SourceServerState& state = pairs_[{server, source}];
  state.sent.push_back(clock_.NowMs());
}

void Crawler::NoteLimited(const std::string& server,
                          const std::string& source) {
  metrics_.limit_hits->Inc();
  SourceServerState& state = pairs_[{server, source}];
  // Dynamic inference: the number of queries we issued in the trailing
  // window is our estimate of this server's limit (§4.1).
  const uint64_t now = clock_.NowMs();
  uint32_t recent = 0;
  for (uint64_t t : state.sent) {
    if (now - t < options_.assumed_window_ms) ++recent;
  }
  ServerState& srv = servers_[server];
  const uint32_t observed = std::max<uint32_t>(1, recent);
  if (!srv.inferred_limit.has_value() || observed < *srv.inferred_limit) {
    srv.inferred_limit = observed;
    obs::Registry::Global()
        .GetGauge("whoiscrf_crawl_inferred_limit",
                  "Inferred per-server query limit (queries per window)",
                  {{"server", server}})
        ->Set(observed);
    LOG_DEBUG("crawler: inferred limit for %s: %u/window", server.c_str(),
              observed);
    if (journal_ != nullptr) journal_->RecordLimit(server, observed);
  }
  state.cooldown_until_ms = now + options_.source_cooldown_ms;
}

std::optional<std::string> Crawler::PacedQuery(const std::string& server,
                                               const std::string& domain) {
  const int attempts = std::min<int>(options_.max_attempts,
                                     static_cast<int>(options_.source_ips.size()));
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const std::string& source =
        options_.source_ips[(next_source_ + static_cast<size_t>(attempt)) %
                            options_.source_ips.size()];
    SourceServerState& state = pairs_[{server, source}];

    // Respect cooldown from a previously tripped limit.
    uint64_t now = clock_.NowMs();
    if (now < state.cooldown_until_ms) {
      clock_.SleepMs(state.cooldown_until_ms - now);
      now = clock_.NowMs();
    }

    // Stay under the inferred limit (with a safety margin) by letting old
    // timestamps age out of the window before sending.
    const auto& srv = servers_[server];
    if (srv.inferred_limit.has_value()) {
      const auto budget = static_cast<uint32_t>(std::max(
          1.0, options_.safety_factor * static_cast<double>(*srv.inferred_limit)));
      while (true) {
        while (!state.sent.empty() &&
               now - state.sent.front() >= options_.assumed_window_ms) {
          state.sent.pop_front();
        }
        if (state.sent.size() < budget) break;
        const uint64_t wait =
            state.sent.front() + options_.assumed_window_ms - now + 1;
        clock_.SleepMs(wait);
        now = clock_.NowMs();
      }
    }

    NoteSent(server, source);
    metrics_.queries->Inc();
    const uint64_t query_start_us = obs::MonotonicMicros();
    QueryResult result;
    {
      obs::ScopedSpan query_span("crawl.query");
      result = network_.Query(server, domain, source, clock_.NowMs());
    }
    LatencyHistogram(server)->Observe(
        static_cast<double>(obs::MonotonicMicros() - query_start_us) / 1000.0);
    if (LooksValid(result)) {
      next_source_ = (next_source_ + static_cast<size_t>(attempt)) %
                     options_.source_ips.size();
      return result.body;
    }
    if (result.connected) NoteLimited(server, source);
  }
  // Rotate the preferred source so the next domain starts elsewhere.
  next_source_ = (next_source_ + 1) % options_.source_ips.size();
  return std::nullopt;
}

CrawlResult Crawler::CrawlDomain(const std::string& domain) {
  obs::ScopedSpan span("crawl.domain");
  // The whole crawl runs inside the lambda so every early return funnels
  // through one journaling point: a domain is journaled exactly when its
  // final status is known.
  CrawlResult result = [&] {
    CrawlResult r;
    r.domain = domain;

    auto thin = PacedQuery(options_.registry_server, domain);
    r.attempts = options_.max_attempts;
    if (!thin.has_value()) {
      r.status = CrawlResult::Status::kFailed;
      metrics_.failed->Inc();
      return r;
    }
    r.thin = *thin;
    if (util::ContainsIgnoreCase(r.thin, "no match")) {
      r.status = CrawlResult::Status::kNoMatch;
      metrics_.no_match->Inc();
      return r;
    }

    r.registrar_server = ExtractWhoisServer(r.thin);
    if (r.registrar_server.empty()) {
      r.status = CrawlResult::Status::kThinOnly;
      metrics_.thin_only->Inc();
      return r;
    }
    auto thick = PacedQuery(r.registrar_server, domain);
    if (!thick.has_value() ||
        util::ContainsIgnoreCase(*thick, "no match")) {
      r.status = CrawlResult::Status::kThinOnly;
      metrics_.thin_only->Inc();
      return r;
    }
    r.thick = *thick;
    r.status = CrawlResult::Status::kOk;
    metrics_.ok->Inc();
    return r;
  }();
  if (journal_ != nullptr) {
    journal_->RecordDomain(result.domain, result.status, result.attempts);
  }
  return result;
}

std::vector<CrawlResult> Crawler::CrawlAll(
    const std::vector<std::string>& domains) {
  std::vector<CrawlResult> out;
  out.reserve(domains.size());
  for (const std::string& domain : domains) {
    out.push_back(CrawlDomain(domain));
  }
  return out;
}

}  // namespace whoiscrf::net
