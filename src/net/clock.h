// Clock abstraction so the crawler and the servers' rate limiters can run
// against simulated time in tests/benches (no real sleeping) and against
// wall-clock time in the TCP example.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace whoiscrf::net {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowMs() = 0;
  virtual void SleepMs(uint64_t ms) = 0;
};

// Wall-clock time; SleepMs really sleeps.
class RealClock final : public Clock {
 public:
  uint64_t NowMs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void SleepMs(uint64_t ms) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

// Virtual time; SleepMs advances instantly. The counter is atomic so one
// thread may Advance while others read NowMs (the serve-layer deadline
// tests drive worker threads against simulated time); there is still no
// cross-thread ordering beyond the counter itself.
class SimClock final : public Clock {
 public:
  uint64_t NowMs() override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  void SleepMs(uint64_t ms) override {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }
  void Advance(uint64_t ms) {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ms_{0};
};

}  // namespace whoiscrf::net
