// Real-socket WHOIS transport on the loopback interface (RFC 3912 framing:
// client sends "<query>\r\n", server writes the response and closes).
//
// TcpWhoisServer binds 127.0.0.1 on an ephemeral port and serves a
// ServerHandler from a background accept thread. TcpNetwork maps WHOIS
// hostnames to local ports and issues real connect/send/recv exchanges, so
// the crawl example exercises the same code path a production crawler
// would, without leaving the machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/transport.h"

namespace whoiscrf::net {

class TcpWhoisServer {
 public:
  // Binds and starts accepting immediately. Throws std::runtime_error if
  // the socket cannot be created/bound.
  explicit TcpWhoisServer(std::shared_ptr<ServerHandler> handler);
  ~TcpWhoisServer();

  TcpWhoisServer(const TcpWhoisServer&) = delete;
  TcpWhoisServer& operator=(const TcpWhoisServer&) = delete;

  uint16_t port() const { return port_; }
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);

  std::shared_ptr<ServerHandler> handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
};

// Client-side network over loopback TCP.
class TcpNetwork final : public Network {
 public:
  // Associates a WHOIS hostname with a local port.
  void Register(std::string hostname, uint16_t port);

  QueryResult Query(const std::string& server, std::string_view query,
                    const std::string& source_ip, uint64_t now_ms) override;

 private:
  std::unordered_map<std::string, uint16_t> ports_;
};

}  // namespace whoiscrf::net
