#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace whoiscrf::net {

namespace {

uint64_t WallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Reads until EOF (the server closes after answering, per RFC 3912).
std::string ReadAll(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpWhoisServer::TcpWhoisServer(std::shared_ptr<ServerHandler> handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpWhoisServer: socket()");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpWhoisServer: bind()");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpWhoisServer: listen()");
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

TcpWhoisServer::~TcpWhoisServer() { Stop(); }

void TcpWhoisServer::Stop() {
  if (stop_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void TcpWhoisServer::AcceptLoop() {
  while (!stop_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    const int client =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (client < 0) {
      if (stop_.load()) return;
      continue;
    }
    ServeConnection(client);
  }
}

void TcpWhoisServer::ServeConnection(int client_fd) {
  // Read the query line (terminated by CRLF or LF).
  std::string query;
  char c;
  while (query.size() < 512) {
    const ssize_t n = ::recv(client_fd, &c, 1, 0);
    if (n <= 0) break;
    if (c == '\n') break;
    if (c != '\r') query.push_back(c);
  }
  sockaddr_in peer{};
  socklen_t len = sizeof(peer);
  char ip[INET_ADDRSTRLEN] = "?";
  if (::getpeername(client_fd, reinterpret_cast<sockaddr*>(&peer), &len) ==
      0) {
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
  }
  const std::string body = handler_->HandleQuery(query, ip, WallMs());
  SendAll(client_fd, body);
  ::shutdown(client_fd, SHUT_RDWR);
  ::close(client_fd);
}

void TcpNetwork::Register(std::string hostname, uint16_t port) {
  ports_[std::move(hostname)] = port;
}

QueryResult TcpNetwork::Query(const std::string& server,
                              std::string_view query,
                              const std::string& /*source_ip*/,
                              uint64_t /*now_ms*/) {
  QueryResult result;
  auto it = ports_.find(server);
  if (it == ports_.end()) return result;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(it->second);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }
  result.connected = true;
  std::string line(query);
  line += "\r\n";
  if (SendAll(fd, line)) {
    ::shutdown(fd, SHUT_WR);
    result.body = ReadAll(fd);
  }
  ::close(fd);
  return result;
}

}  // namespace whoiscrf::net
