#include "net/flaky.h"

namespace whoiscrf::net {

FlakyHandler::FlakyHandler(std::shared_ptr<ServerHandler> inner,
                           FaultPolicy policy, uint64_t seed)
    : inner_(std::move(inner)), policy_(policy), rng_(seed) {}

std::string FlakyHandler::HandleQuery(std::string_view query,
                                      const std::string& source,
                                      uint64_t now_ms) {
  if (rng_.Bernoulli(policy_.drop_probability)) {
    ++faults_;
    return {};
  }
  std::string body = inner_->HandleQuery(query, source, now_ms);
  if (!body.empty() && rng_.Bernoulli(policy_.truncate_probability)) {
    ++faults_;
    body.resize(static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(body.size()) / 2)));
  } else if (rng_.Bernoulli(policy_.garble_probability)) {
    ++faults_;
    body.assign("%% ERROR 502: upstream registry database unavailable\n");
  }
  return body;
}

FlakyNetwork::FlakyNetwork(Network& inner, FaultPolicy policy, uint64_t seed,
                           Clock* clock)
    : inner_(inner), policy_(policy), rng_(seed), clock_(clock) {}

FlakyNetwork::FlakyNetwork(Network& inner,
                           double connect_failure_probability, uint64_t seed)
    : FlakyNetwork(inner,
                   [&] {
                     FaultPolicy p;
                     p.connect_failure_probability =
                         connect_failure_probability;
                     return p;
                   }(),
                   seed) {}

QueryResult FlakyNetwork::Query(const std::string& server,
                                std::string_view query,
                                const std::string& source_ip,
                                uint64_t now_ms) {
  if (rng_.Bernoulli(policy_.connect_failure_probability)) {
    ++failed_;
    return QueryResult{};  // connection refused / reset
  }
  if (rng_.Bernoulli(policy_.hang_probability)) {
    // The server accepts and never answers: the client burns its whole
    // timeout before giving up on a dead connection.
    ++hung_;
    if (clock_ != nullptr) clock_->SleepMs(policy_.client_timeout_ms);
    return QueryResult{};
  }
  if (policy_.delay_ms > 0 && rng_.Bernoulli(policy_.delay_probability)) {
    ++delayed_;
    if (clock_ != nullptr) {
      clock_->SleepMs(policy_.delay_ms);
      now_ms = clock_->NowMs();
    } else {
      now_ms += policy_.delay_ms;
    }
  }
  return inner_.Query(server, query, source_ip, now_ms);
}

}  // namespace whoiscrf::net
