#include "net/crawl_journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/checkpoint.h"
#include "util/string_util.h"

namespace whoiscrf::net {

namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("crawl journal: " + what + " " + path + ": " +
                           std::strerror(errno));
}

std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

CrawlJournal::Replay CrawlJournal::Load(const std::string& path) {
  Replay replay;
  std::string text;
  if (!util::ReadFileToString(path, text)) return replay;
  size_t start = 0;
  while (start < text.size()) {
    const size_t newline = text.find('\n', start);
    if (newline == std::string::npos) break;  // torn final line: ignore
    const std::string_view line(text.data() + start, newline - start);
    start = newline + 1;
    if (line.empty()) continue;
    const auto fields = SplitTabs(line);
    if (fields[0] == "D" && fields.size() == 4) {
      CrawlResult::Status status;
      if (!ParseCrawlStatus(fields[2], status)) {
        throw std::runtime_error("crawl journal: unknown status in " + path +
                                 ": " + std::string(line));
      }
      replay.domains[std::string(fields[1])] = status;
    } else if (fields[0] == "L" && fields.size() == 3) {
      const uint32_t limit = static_cast<uint32_t>(
          std::strtoul(std::string(fields[2]).c_str(), nullptr, 10));
      auto it = replay.limits.find(std::string(fields[1]));
      if (it == replay.limits.end() || limit < it->second) {
        replay.limits[std::string(fields[1])] = limit;
      }
    } else {
      throw std::runtime_error("crawl journal: malformed line in " + path +
                               ": " + std::string(line));
    }
  }
  return replay;
}

CrawlJournal::CrawlJournal(const std::string& path) : path_(path) {
  entries_ = obs::Registry::Global().GetCounter(
      "whoiscrf_crawl_journal_entries_total",
      "Entries appended to the crawl journal (domains + inferred limits)");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) Fail("cannot open", path);
  // Truncate a torn final line (crash mid-append) so every appended entry
  // starts on a line boundary.
  std::string text;
  if (util::ReadFileToString(path, text)) {
    const size_t last_newline = text.find_last_of('\n');
    const off_t keep =
        last_newline == std::string::npos
            ? 0
            : static_cast<off_t>(last_newline + 1);
    if (keep != static_cast<off_t>(text.size())) {
      if (::ftruncate(fd_, keep) != 0) Fail("cannot truncate", path);
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) Fail("cannot seek", path);
  }
}

CrawlJournal::~CrawlJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CrawlJournal::AppendLine(const std::string& line) {
  size_t done = 0;
  while (done < line.size()) {
    const ssize_t w = ::write(fd_, line.data() + done, line.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      Fail("cannot append to", path_);
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd_) != 0) Fail("cannot fsync", path_);
  entries_->Inc();
}

void CrawlJournal::RecordDomain(const std::string& domain,
                                CrawlResult::Status status, int attempts) {
  AppendLine(util::Format("D\t%s\t%s\t%d\n", domain.c_str(),
                          CrawlStatusName(status), attempts));
}

void CrawlJournal::RecordLimit(const std::string& server, uint32_t limit) {
  AppendLine(util::Format("L\t%s\t%u\n", server.c_str(), limit));
}

}  // namespace whoiscrf::net
