#include "net/transport.h"

namespace whoiscrf::net {

void InProcNetwork::Register(std::string hostname,
                             std::shared_ptr<ServerHandler> handler) {
  servers_[std::move(hostname)] = std::move(handler);
}

QueryResult InProcNetwork::Query(const std::string& server,
                                 std::string_view query,
                                 const std::string& source_ip,
                                 uint64_t now_ms) {
  auto it = servers_.find(server);
  if (it == servers_.end()) return QueryResult{};  // unreachable host
  QueryResult result;
  result.connected = true;
  result.body = it->second->HandleQuery(query, source_ip, now_ms);
  return result;
}

}  // namespace whoiscrf::net
