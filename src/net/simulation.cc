#include "net/simulation.h"

#include "util/random.h"

namespace whoiscrf::net {

SimulatedInternet BuildSimulatedInternet(
    const datagen::CorpusGenerator& generator,
    const SimulationOptions& options) {
  SimulatedInternet sim;
  sim.network = std::make_unique<InProcNetwork>();
  sim.registry_server = "whois.verisign-grs.com";

  auto registry_store = std::make_shared<RecordStore>();
  std::map<std::string, std::shared_ptr<RecordStore>> registrar_stores;

  util::Rng rng(generator.options().seed ^ 0xC0FFEE);
  for (size_t i = 0; i < options.num_domains; ++i) {
    datagen::GeneratedDomain domain = generator.Generate(i);
    const std::string& name = domain.facts.domain;
    sim.zone_domains.push_back(name);

    if (rng.Bernoulli(options.missing_fraction)) {
      sim.missing_domains.push_back(name);
      continue;  // expired between the zone snapshot and the crawl
    }

    registry_store->Add(name, generator.RenderThin(domain.facts).text);
    auto& store = registrar_stores[domain.facts.whois_server];
    if (store == nullptr) store = std::make_shared<RecordStore>();
    store->Add(name, domain.thick.text);
    sim.truth.emplace(name, std::move(domain));
  }

  ServerBehavior registry_behavior;
  registry_behavior.rate_limit = options.registry_policy;
  registry_behavior.limit_banner = "";  // Verisign goes silent when limiting
  sim.network->Register(
      sim.registry_server,
      std::make_shared<RegistryHandler>(registry_store, registry_behavior));

  size_t index = 0;
  for (auto& [server, store] : registrar_stores) {
    ServerBehavior behavior;
    behavior.rate_limit = options.registrar_policy;
    // Vary the limit a little per registrar and alternate between silent
    // drops and error banners — both occur in the wild (§4.1).
    behavior.rate_limit.max_queries += static_cast<uint32_t>(index % 20);
    behavior.limit_banner =
        (index % 2 == 0) ? ""
                         : "%% Query rate limit exceeded. Try again later.\n";
    sim.network->Register(
        server, std::make_shared<RegistrarHandler>(store, behavior));
    ++index;
  }
  return sim;
}

}  // namespace whoiscrf::net
