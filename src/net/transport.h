// Transport abstraction for the WHOIS protocol (RFC 3912): a client sends
// one query line over TCP port 43, the server writes its answer and closes.
//
// Two implementations exist: InProcNetwork (direct handler dispatch with
// simulated time — used by tests and benches) and TcpNetwork (real loopback
// sockets — used by the crawl example). Both present the same Query()
// interface, so the crawler is transport-agnostic.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace whoiscrf::net {

// Server-side: one WHOIS service's query handler.
class ServerHandler {
 public:
  virtual ~ServerHandler() = default;
  // Answers one query from `source` (client address) at `now_ms`.
  // Returning an empty string models a rate-limited/non-responsive server.
  virtual std::string HandleQuery(std::string_view query,
                                  const std::string& source,
                                  uint64_t now_ms) = 0;
};

// Client-side result of one RFC 3912 exchange.
struct QueryResult {
  bool connected = false;  // server reachable
  std::string body;        // response text (empty on rate limit / no match)
};

class Network {
 public:
  virtual ~Network() = default;
  // One query to `server` (hostname) from the vantage point `source_ip`.
  virtual QueryResult Query(const std::string& server, std::string_view query,
                            const std::string& source_ip, uint64_t now_ms) = 0;
};

// Hostname -> handler dispatch without sockets.
class InProcNetwork final : public Network {
 public:
  void Register(std::string hostname, std::shared_ptr<ServerHandler> handler);

  QueryResult Query(const std::string& server, std::string_view query,
                    const std::string& source_ip, uint64_t now_ms) override;

 private:
  std::unordered_map<std::string, std::shared_ptr<ServerHandler>> servers_;
};

}  // namespace whoiscrf::net
