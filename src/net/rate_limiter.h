// Per-source-IP rate limiting as WHOIS servers implement it (§4.1): once a
// source exceeds its query budget within a window, the server stops giving
// useful answers until a penalty period expires. Thresholds are typically
// unpublished — which is exactly what the crawler has to infer.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

namespace whoiscrf::net {

struct RateLimitPolicy {
  uint32_t max_queries = 60;     // allowed queries per window
  uint64_t window_ms = 60'000;   // sliding window length
  uint64_t penalty_ms = 120'000; // lock-out after a violation
};

class RateLimiter {
 public:
  explicit RateLimiter(RateLimitPolicy policy) : policy_(policy) {}

  // Records a query from `source` at `now_ms` and returns whether the
  // server should answer it. A denied query also (re)starts the penalty
  // window, as real servers do — hammering a limited server keeps it locked.
  bool Allow(const std::string& source, uint64_t now_ms);

  // True if `source` is currently serving a penalty.
  bool InPenalty(const std::string& source, uint64_t now_ms) const;

  const RateLimitPolicy& policy() const { return policy_; }

 private:
  struct SourceState {
    std::deque<uint64_t> timestamps;  // within the current window
    uint64_t penalty_until_ms = 0;
  };
  RateLimitPolicy policy_;
  std::unordered_map<std::string, SourceState> sources_;
};

}  // namespace whoiscrf::net
