#include "net/whois_server.h"

#include "util/string_util.h"

namespace whoiscrf::net {

void RecordStore::Add(std::string domain, std::string body) {
  records_[util::ToLower(domain)] = std::move(body);
}

const std::string* RecordStore::Find(const std::string& domain) const {
  auto it = records_.find(util::ToLower(domain));
  return it == records_.end() ? nullptr : &it->second;
}

RegistrarHandler::RegistrarHandler(std::shared_ptr<RecordStore> store,
                                   ServerBehavior behavior)
    : store_(std::move(store)),
      behavior_(std::move(behavior)),
      limiter_(behavior_.rate_limit) {}

std::string RegistrarHandler::HandleQuery(std::string_view query,
                                          const std::string& source,
                                          uint64_t now_ms) {
  if (!limiter_.Allow(source, now_ms)) {
    ++limited_;
    return behavior_.limit_banner;
  }
  ++served_;
  const std::string domain(util::Trim(query));
  const std::string* body = store_->Find(domain);
  return body == nullptr ? behavior_.no_match : *body;
}

}  // namespace whoiscrf::net
