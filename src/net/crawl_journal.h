// Append-only crawl journal: the durable record of a crawl's progress.
//
// Every finished domain and every inferred per-server rate limit becomes
// one fsync'd line, so after a crash `crawl --resume` can (a) skip every
// domain the interrupted run completed and (b) start out already knowing
// the rate limits that run paid queries to learn — the expensive part of
// the paper's six-month crawl to protect (§4.1).
//
// Format (docs/formats.md "Crawl journal"): one record per line,
// tab-separated, first field is the record type:
//
//   D \t <domain> \t <status> \t <attempts>     domain outcome
//   L \t <server> \t <limit>                    inferred limit (per window)
//
// A torn final line (crash mid-write) is detected by the missing trailing
// newline; Load ignores it and the appending constructor truncates it
// away before continuing.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/crawler.h"

namespace whoiscrf::obs {
class Counter;
}  // namespace whoiscrf::obs

namespace whoiscrf::net {

class CrawlJournal {
 public:
  // Everything a resumed crawl learns from a journal.
  struct Replay {
    // Final status per completed domain (last entry wins).
    std::map<std::string, CrawlResult::Status> domains;
    // Lowest inferred limit per server.
    std::map<std::string, uint32_t> limits;
  };

  // Reads a journal; a missing file yields an empty Replay. Tolerates a
  // torn final line. Throws on unreadable files or unparseable complete
  // lines.
  static Replay Load(const std::string& path);

  // Opens `path` for appending (creating it if needed), truncating any
  // torn final line first. Entries are fsync'd one by one: once a Record*
  // call returns, that entry survives a crash.
  explicit CrawlJournal(const std::string& path);
  ~CrawlJournal();

  CrawlJournal(const CrawlJournal&) = delete;
  CrawlJournal& operator=(const CrawlJournal&) = delete;

  void RecordDomain(const std::string& domain, CrawlResult::Status status,
                    int attempts);
  void RecordLimit(const std::string& server, uint32_t limit);

 private:
  void AppendLine(const std::string& line);

  int fd_ = -1;
  std::string path_;
  obs::Counter* entries_;
};

}  // namespace whoiscrf::net
