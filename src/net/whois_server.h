// WHOIS server simulators (§2.2, §4.1).
//
// RegistryHandler models Verisign's thin .com registry: it answers with a
// thin record containing the sponsoring registrar's WHOIS server referral.
// RegistrarHandler models a registrar's thick WHOIS server. Both enforce
// per-source rate limits with penalty windows, exactly the behavior the
// paper's crawler had to infer and respect.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "net/rate_limiter.h"
#include "net/transport.h"

namespace whoiscrf::net {

// Shared store of records for one server: domain -> response body.
class RecordStore {
 public:
  void Add(std::string domain, std::string body);
  // nullptr when the domain is unknown to this server.
  const std::string* Find(const std::string& domain) const;
  size_t size() const { return records_.size(); }

 private:
  std::map<std::string, std::string> records_;
};

struct ServerBehavior {
  RateLimitPolicy rate_limit;
  // What a rate-limited client sees: some servers return an error banner,
  // others an empty reply (the paper observed both; §4.1).
  std::string limit_banner;  // empty = silent drop
  // Response for unknown domains.
  std::string no_match = "No match for domain.\n";
};

class RegistrarHandler final : public ServerHandler {
 public:
  RegistrarHandler(std::shared_ptr<RecordStore> store,
                   ServerBehavior behavior);

  std::string HandleQuery(std::string_view query, const std::string& source,
                          uint64_t now_ms) override;

  uint64_t queries_served() const { return served_; }
  uint64_t queries_limited() const { return limited_; }

 private:
  std::shared_ptr<RecordStore> store_;
  ServerBehavior behavior_;
  RateLimiter limiter_;
  uint64_t served_ = 0;
  uint64_t limited_ = 0;
};

// The registry is a RegistrarHandler over thin records; the distinction is
// in the records it stores, not the protocol. An alias keeps call sites
// readable.
using RegistryHandler = RegistrarHandler;

}  // namespace whoiscrf::net
