// Wires a synthetic corpus into a simulated WHOIS internet: one thin
// registry server (Verisign-style) plus one thick server per registrar,
// each with its own rate-limit policy — the environment the paper's
// crawler operated in (§4.1).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datagen/corpus_gen.h"
#include "net/transport.h"
#include "net/whois_server.h"

namespace whoiscrf::net {

struct SimulationOptions {
  size_t num_domains = 500;
  // Fraction of zone-file domains that expired before the crawl reached
  // them (the registry answers "no match"; §4.1).
  double missing_fraction = 0.03;
  RateLimitPolicy registry_policy{.max_queries = 200,
                                  .window_ms = 60'000,
                                  .penalty_ms = 60'000};
  RateLimitPolicy registrar_policy{.max_queries = 30,
                                   .window_ms = 60'000,
                                   .penalty_ms = 120'000};
};

struct SimulatedInternet {
  std::unique_ptr<InProcNetwork> network;
  std::string registry_server;             // hostname of the thin registry
  std::vector<std::string> zone_domains;   // the "zone file" to crawl
  // Ground truth for verification: domain -> generated record.
  std::map<std::string, datagen::GeneratedDomain> truth;
  // Domains deliberately absent from every server.
  std::vector<std::string> missing_domains;
};

SimulatedInternet BuildSimulatedInternet(
    const datagen::CorpusGenerator& generator,
    const SimulationOptions& options = {});

}  // namespace whoiscrf::net
