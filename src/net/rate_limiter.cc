#include "net/rate_limiter.h"

namespace whoiscrf::net {

bool RateLimiter::Allow(const std::string& source, uint64_t now_ms) {
  SourceState& state = sources_[source];

  if (now_ms < state.penalty_until_ms) {
    // Queries during a penalty extend it — backing off is the only cure.
    state.penalty_until_ms = now_ms + policy_.penalty_ms;
    return false;
  }

  // Evict timestamps that left the sliding window.
  while (!state.timestamps.empty() &&
         now_ms - state.timestamps.front() >= policy_.window_ms) {
    state.timestamps.pop_front();
  }

  if (state.timestamps.size() >= policy_.max_queries) {
    state.penalty_until_ms = now_ms + policy_.penalty_ms;
    return false;
  }
  state.timestamps.push_back(now_ms);
  return true;
}

bool RateLimiter::InPenalty(const std::string& source,
                            uint64_t now_ms) const {
  auto it = sources_.find(source);
  return it != sources_.end() && now_ms < it->second.penalty_until_ms;
}

}  // namespace whoiscrf::net
