// Failure injection for the WHOIS network substrate.
//
// Real crawls fail in more ways than rate limiting (§4.1 reports ~7.5% of
// domains failing after three attempts): connections drop, servers return
// truncated or garbled bodies, responses crawl in slowly, and some hosts
// accept the connection and then never answer. FlakyHandler wraps any
// ServerHandler and injects body-level faults with configured
// probabilities; FlakyNetwork wraps a Network and injects
// connection-level faults (failures, latency, hangs). Both are
// deterministic given their seed, so tests of crawler resilience are
// reproducible — and the time-based faults run against a Clock, so a
// SimClock exercises client-timeout paths in simulated time.
#pragma once

#include <memory>

#include "net/clock.h"
#include "net/transport.h"
#include "util/random.h"

namespace whoiscrf::net {

struct FaultPolicy {
  // Server-side (FlakyHandler) faults.
  double drop_probability = 0.0;       // respond with nothing at all
  double truncate_probability = 0.0;   // cut the body mid-record
  double garble_probability = 0.0;     // replace the body with noise
  // Client-side (FlakyNetwork) faults.
  double connect_failure_probability = 0.0;  // refuse / reset the connection
  double delay_probability = 0.0;  // slow response: sleep delay_ms, then answer
  uint64_t delay_ms = 0;
  // Accepted connection that never answers: the client burns its full
  // timeout, then sees a dead connection.
  double hang_probability = 0.0;
  uint64_t client_timeout_ms = 30'000;  // time a hang costs the caller
};

// Server-side fault injection: wraps a handler.
class FlakyHandler final : public ServerHandler {
 public:
  FlakyHandler(std::shared_ptr<ServerHandler> inner, FaultPolicy policy,
               uint64_t seed);

  std::string HandleQuery(std::string_view query, const std::string& source,
                          uint64_t now_ms) override;

  uint64_t faults_injected() const { return faults_; }

 private:
  std::shared_ptr<ServerHandler> inner_;
  FaultPolicy policy_;
  util::Rng rng_;
  uint64_t faults_ = 0;
};

// Client-side fault injection: wraps a network and injects connection
// failures, added latency, and hangs. Time-based faults sleep on `clock`
// (pass a SimClock for instant simulated time); with a null clock they
// degrade to their instantaneous effect (the failure still happens, no
// time passes).
class FlakyNetwork final : public Network {
 public:
  FlakyNetwork(Network& inner, FaultPolicy policy, uint64_t seed,
               Clock* clock = nullptr);
  // Legacy convenience: connection failures only.
  FlakyNetwork(Network& inner, double connect_failure_probability,
               uint64_t seed);

  QueryResult Query(const std::string& server, std::string_view query,
                    const std::string& source_ip, uint64_t now_ms) override;

  uint64_t connections_failed() const { return failed_; }
  uint64_t delays_injected() const { return delayed_; }
  uint64_t hangs_injected() const { return hung_; }

 private:
  Network& inner_;
  FaultPolicy policy_;
  util::Rng rng_;
  Clock* clock_;
  uint64_t failed_ = 0;
  uint64_t delayed_ = 0;
  uint64_t hung_ = 0;
};

}  // namespace whoiscrf::net
