// Failure injection for the WHOIS network substrate.
//
// Real crawls fail in more ways than rate limiting (§4.1 reports ~7.5% of
// domains failing after three attempts): connections drop, servers return
// truncated or garbled bodies, and some hosts flap. FlakyHandler wraps any
// ServerHandler and injects those faults with configured probabilities;
// FlakyNetwork wraps a Network and injects connection-level failures. Both
// are deterministic given their seed, so tests of crawler resilience are
// reproducible.
#pragma once

#include <memory>

#include "net/transport.h"
#include "util/random.h"

namespace whoiscrf::net {

struct FaultPolicy {
  double drop_probability = 0.0;       // respond with nothing at all
  double truncate_probability = 0.0;   // cut the body mid-record
  double garble_probability = 0.0;     // replace the body with noise
};

// Server-side fault injection: wraps a handler.
class FlakyHandler final : public ServerHandler {
 public:
  FlakyHandler(std::shared_ptr<ServerHandler> inner, FaultPolicy policy,
               uint64_t seed);

  std::string HandleQuery(std::string_view query, const std::string& source,
                          uint64_t now_ms) override;

  uint64_t faults_injected() const { return faults_; }

 private:
  std::shared_ptr<ServerHandler> inner_;
  FaultPolicy policy_;
  util::Rng rng_;
  uint64_t faults_ = 0;
};

// Client-side fault injection: wraps a network and fails connections with
// the given probability (models unreachable hosts and mid-flight resets).
class FlakyNetwork final : public Network {
 public:
  FlakyNetwork(Network& inner, double connect_failure_probability,
               uint64_t seed);

  QueryResult Query(const std::string& server, std::string_view query,
                    const std::string& source_ip, uint64_t now_ms) override;

  uint64_t connections_failed() const { return failed_; }

 private:
  Network& inner_;
  double connect_failure_probability_;
  util::Rng rng_;
  uint64_t failed_ = 0;
};

}  // namespace whoiscrf::net
