// New-TLD registry templates for the Table 2 generalization experiment.
//
// Each new gTLD is operated by a single (thick) registry with one
// consistent format (§5.2), so one record per TLD suffices. The formats
// below vary from near-ICANN-standard (info, org — both parser types do
// well) to idiosyncratic contextual layouts (coop, travel, us — where
// rule-based parsing collapses), mirroring the difficulty spread the paper
// reports.
#include "datagen/template_library.h"

#include "datagen/pools.h"

namespace whoiscrf::datagen {

namespace {

using L = whois::Level1Label;
using S = whois::Level2Label;

std::string Boiler(size_t index) {
  const auto boilers = pools::Boilerplates();
  return std::string(boilers[index % boilers.size()]);
}

}  // namespace

void TemplateLibrary::BuildNewTldTemplates() {
  // info / org: Afilias & PIR use the familiar ICANN-style schema; both
  // parser types should be near-perfect here (Table 2 reports 0 errors).
  for (const char* tld : {"info", "org"}) {
    TemplateSpec spec;
    spec.id = std::string("tld/") + tld;
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Updated Date", Slot::kUpdated));
    e.push_back(Field(L::kDate, "Creation Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Registry Expiry Date", Slot::kExpires));
    e.push_back(Field(L::kDomain, "Domain Status", Slot::kStatuses));
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Street", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant State/Province", Slot::kRegState,
                         S::kState));
    e.push_back(RegField("Registrant Postal Code", Slot::kRegPostcode,
                         S::kPostcode));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Phone", Slot::kRegPhone, S::kPhone));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kOther, "Admin Name", Slot::kAdminName));
    e.push_back(Field(L::kOther, "Admin Email", Slot::kAdminEmail));
    e.push_back(Field(L::kOther, "Tech Name", Slot::kTechName));
    e.push_back(Field(L::kOther, "Tech Email", Slot::kTechEmail));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Field(L::kDomain, "DNSSEC", Slot::kDnssec));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(0)));
    new_tlds_[tld] = std::move(spec);
  }

  // mobi / pro / xxx / aero: ICANN-adjacent with renamed titles — a couple
  // of lines trip the rule-based parser, the CRF stays near-zero.
  {
    TemplateSpec spec;
    spec.id = "tld/mobi";
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Sponsoring Registrar",
                      Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Domain Registration Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Domain Expiration Date", Slot::kExpires));
    e.push_back(Field(L::kDate, "Domain Last Updated Date", Slot::kUpdated));
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Address", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant Postal Code", Slot::kRegPostcode,
                         S::kPostcode));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant E-mail", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(1)));
    new_tlds_["mobi"] = std::move(spec);
  }
  {
    TemplateSpec spec;
    spec.id = "tld/pro";
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kDomain, "Domain ID", Slot::kIanaId));
    e.push_back(Field(L::kRegistrar, "Sponsoring Registrar",
                      Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Domain Creation Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Domain Expiration Date", Slot::kExpires));
    e.push_back(RegField("Registrant ID", Slot::kRegId, S::kId));
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Street1", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant State/Province", Slot::kRegState,
                         S::kState));
    e.push_back(RegField("Registrant Postal Code", Slot::kRegPostcode,
                         S::kPostcode));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Phone", Slot::kRegPhone, S::kPhone));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(2)));
    new_tlds_["pro"] = std::move(spec);
  }
  {
    TemplateSpec spec;
    spec.id = "tld/xxx";
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kRegistrar, "Registrar Website",
                      Slot::kRegistrarUrl));
    e.push_back(Field(L::kDate, "Creation Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expiry Date", Slot::kExpires));
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Street", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(3)));
    new_tlds_["xxx"] = std::move(spec);
  }
  {
    TemplateSpec spec;
    spec.id = "tld/aero";
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Boilerplate("% .aero WHOIS registry"));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Created On", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expiration Date", Slot::kExpires));
    e.push_back(RegField("Domain Holder", Slot::kRegName, S::kName));
    e.push_back(RegField("Holder Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Holder Street", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Holder City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Holder Country", Slot::kRegCountryCode, S::kCountry));
    e.push_back(RegField("Holder Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(4)));
    new_tlds_["aero"] = std::move(spec);
  }

  // asia: CNNIC-style with many ID'd contact lines — unfamiliar titles.
  {
    TemplateSpec spec;
    spec.id = "tld/asia";
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain ID", Slot::kIanaId));
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kDate, "Domain Create Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Domain Expiration Date", Slot::kExpires));
    e.push_back(Field(L::kDate, "Domain Last Updated Date", Slot::kUpdated));
    e.push_back(Field(L::kRegistrar, "Sponsoring Registrar",
                      Slot::kRegistrarName));
    e.push_back(Field(L::kDomain, "Domain Status", Slot::kStatuses));
    e.push_back(RegField("Registrant PID", Slot::kRegId, S::kId));
    e.push_back(RegField("Registrant Given Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Entity Name", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Address1", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant Postal Code", Slot::kRegPostcode,
                         S::kPostcode));
    e.push_back(RegField("Registrant Country Code", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Telephone", Slot::kRegPhone, S::kPhone));
    e.push_back(RegField("Registrant E-Mail", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "Nameservers", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(5)));
    new_tlds_["asia"] = std::move(spec);
  }

  // biz: NeuLevel verbose schema — every title prefixed oddly.
  {
    TemplateSpec spec;
    spec.id = "tld/biz";
    spec.date_style = DateStyle::kUsSlashes;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Sponsoring Registrar",
                      Slot::kRegistrarName));
    e.push_back(Field(L::kDomain, "Domain Status", Slot::kStatuses));
    e.push_back(RegField("Registrant Contact ID", Slot::kRegId, S::kId));
    e.push_back(RegField("Registrant Contact Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization Name", Slot::kRegOrg,
                         S::kOrg));
    e.push_back(RegField("Registrant Address Line 1", Slot::kRegStreet,
                         S::kStreet));
    e.push_back(RegField("Registrant City Name", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant State Code", Slot::kRegState, S::kState));
    e.push_back(RegField("Registrant Postal Number", Slot::kRegPostcode,
                         S::kPostcode));
    e.push_back(RegField("Registrant Country Value", Slot::kRegCountryName,
                         S::kCountry));
    e.push_back(RegField("Registrant Telephone Number", Slot::kRegPhone,
                         S::kPhone));
    e.push_back(RegField("Registrant Electronic Mail", Slot::kRegEmail,
                         S::kEmail));
    e.push_back(Field(L::kDate, "Domain Registration Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Domain Expiration Date", Slot::kExpires));
    e.push_back(Field(L::kDate, "Domain Last Updated Date", Slot::kUpdated));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(0)));
    new_tlds_["biz"] = std::move(spec);
  }

  // coop: the pathological case — contextual multi-block layout with
  // cryptic keys and value-only lines (Table 2: even the CRF errs here).
  {
    TemplateSpec spec;
    spec.id = "tld/coop";
    spec.date_style = DateStyle::kDMonY;
    spec.separator = ":  ";
    spec.indent = "        ";
    auto& e = spec.elements;
    e.push_back(Boilerplate("%% .coop registry whois service\n"
                            "%% for the global cooperative community"));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "domain", Slot::kDomainName));
    e.push_back(Field(L::kDate, "record generated", Slot::kUpdated));
    e.push_back(Field(L::kDate, "inception", Slot::kCreated));
    e.push_back(Field(L::kDate, "paid up to", Slot::kExpires));
    e.push_back(Blank());
    e.push_back(Literal(L::kRegistrant, "contact", "registrant",
                        S::kOther));
    {
      Element f = RegField("", Slot::kRegName, S::kName);
      f.indent = true;
      e.push_back(f);
      f = RegField("", Slot::kRegOrg, S::kOrg);
      f.indent = true;
      e.push_back(f);
      f = RegField("", Slot::kRegStreet, S::kStreet);
      f.indent = true;
      e.push_back(f);
      f = RegField("", Slot::kRegCityStateZip, S::kCity);
      f.indent = true;
      e.push_back(f);
      f = RegField("", Slot::kRegCountryName, S::kCountry);
      f.indent = true;
      e.push_back(f);
      f = RegField("", Slot::kRegPhone, S::kPhone);
      f.indent = true;
      e.push_back(f);
      f = RegField("", Slot::kRegEmail, S::kEmail);
      f.indent = true;
      e.push_back(f);
    }
    e.push_back(Blank());
    e.push_back(Literal(L::kOther, "contact", "admin"));
    {
      Element f = Field(L::kOther, "", Slot::kAdminName);
      f.indent = true;
      e.push_back(f);
      f = Field(L::kOther, "", Slot::kAdminEmail);
      f.indent = true;
      e.push_back(f);
    }
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "host", Slot::kNameServers));
    e.push_back(Field(L::kRegistrar, "sponsor", Slot::kRegistrarName));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(2)));
    new_tlds_["coop"] = std::move(spec);
  }

  // name: compact personal-registration record.
  {
    TemplateSpec spec;
    spec.id = "tld/name";
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Created On", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expires On", Slot::kExpires));
    e.push_back(RegField("Registrant", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    new_tlds_["name"] = std::move(spec);
  }

  // travel: Tralliance's upper-case underscore keys.
  {
    TemplateSpec spec;
    spec.id = "tld/travel";
    spec.date_style = DateStyle::kIsoTime;
    spec.separator = "=";
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "DOMAIN", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "SPONSOR", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "CREATED_DATE", Slot::kCreated));
    e.push_back(Field(L::kDate, "EXPIRY_DATE", Slot::kExpires));
    e.push_back(RegField("DOMAIN_OWNER_NAME", Slot::kRegName, S::kName));
    e.push_back(RegField("DOMAIN_OWNER_ORG", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("DOMAIN_OWNER_ADDRESS", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("DOMAIN_OWNER_CITY", Slot::kRegCity, S::kCity));
    e.push_back(RegField("DOMAIN_OWNER_ZIP", Slot::kRegPostcode, S::kPostcode));
    e.push_back(RegField("DOMAIN_OWNER_COUNTRY", Slot::kRegCountryCode, S::kCountry));
    e.push_back(RegField("DOMAIN_OWNER_PHONE", Slot::kRegPhone, S::kPhone));
    e.push_back(RegField("DOMAIN_OWNER_EMAIL", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "NSERVER", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(3)));
    new_tlds_["travel"] = std::move(spec);
  }

  // us: NeuStar keys with "(C)" suffixes.
  {
    TemplateSpec spec;
    spec.id = "tld/us";
    spec.date_style = DateStyle::kDMonY;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name (UTF-8)", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Sponsoring Registrar (C)",
                      Slot::kRegistrarName));
    e.push_back(Field(L::kDomain, "Domain Status (C)", Slot::kStatuses));
    e.push_back(RegField("Registrant Name (C)", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization (C)", Slot::kRegOrg,
                         S::kOrg));
    e.push_back(RegField("Registrant Address1 (C)", Slot::kRegStreet,
                         S::kStreet));
    e.push_back(RegField("Registrant City (C)", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant State/Province (C)", Slot::kRegState,
                         S::kState));
    e.push_back(RegField("Registrant Postal Code (C)", Slot::kRegPostcode,
                         S::kPostcode));
    e.push_back(RegField("Registrant Country Code (C)",
                         Slot::kRegCountryCode, S::kCountry));
    e.push_back(RegField("Registrant Phone Number (C)", Slot::kRegPhone,
                         S::kPhone));
    e.push_back(RegField("Registrant Email (C)", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDate, "Domain Registration Date (C)",
                      Slot::kCreated));
    e.push_back(Field(L::kDate, "Domain Expiration Date (C)", Slot::kExpires));
    e.push_back(Field(L::kDomain, "Name Server (C)", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(4)));
    new_tlds_["us"] = std::move(spec);
  }
}

}  // namespace whoiscrf::datagen
