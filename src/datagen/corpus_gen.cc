#include "datagen/corpus_gen.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "datagen/country_data.h"
#include "text/line_splitter.h"
#include "datagen/pools.h"
#include "datagen/privacy.h"
#include "util/string_util.h"

namespace whoiscrf::datagen {

namespace {

// Big holders beyond Table 4's brands (§6.1 mentions domain sellers and
// online marketers standing out). Counts are the approximate scale the
// paper implies relative to the brands.
struct BigHolder {
  const char* org;
  int domains;
};
constexpr BigHolder kSellers[] = {
    {"BuyDomains.com", 60000},     {"HugeDomains.com", 55000},
    {"Domain Asset Holdings", 40000}, {"Dex Media", 30000},
    {"Yodle", 25000},              {"Sakura Internet", 22000},
    {"Xserver", 20000},
};

constexpr const char* kStatuses[] = {
    "clientTransferProhibited", "clientDeleteProhibited",
    "clientUpdateProhibited", "ok", "clientRenewProhibited"};

std::string IsoDate(util::Rng& rng, int year) {
  const int month = static_cast<int>(rng.UniformInt(1, 12));
  const int day = static_cast<int>(rng.UniformInt(1, 28));
  return util::Format("%04d-%02d-%02dT%02d:%02d:%02dZ", year, month, day,
                      static_cast<int>(rng.UniformInt(0, 23)),
                      static_cast<int>(rng.UniformInt(0, 59)),
                      static_cast<int>(rng.UniformInt(0, 59)));
}

// Label-preserving perturbations of a rendered record. Each edit keeps the
// invariant that labels[i] corresponds to the i-th *labeled* line, so
// ground truth stays exact.
void ApplyNoise(whois::LabeledRecord& record, util::Rng& rng) {
  auto raw_lines = util::SplitLines(record.text);
  std::vector<std::string> lines(raw_lines.begin(), raw_lines.end());

  const int edits = static_cast<int>(rng.UniformInt(1, 3));
  for (int e = 0; e < edits; ++e) {
    switch (rng.UniformInt(0, 3)) {
      case 0: {  // insert a blank line (blanks carry no label)
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(lines.size())));
        lines.insert(lines.begin() + static_cast<ptrdiff_t>(at), "");
        break;
      }
      case 1: {  // upper-case one labeled line's text
        if (lines.empty()) break;
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
        lines[at] = util::ToUpper(lines[at]);
        break;
      }
      case 2: {  // typo: swap two adjacent alphabetic characters
        if (lines.empty()) break;
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
        std::string& line = lines[at];
        if (line.size() >= 3) {
          const size_t pos = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(line.size()) - 2));
          if (std::isalpha(static_cast<unsigned char>(line[pos])) &&
              std::isalpha(static_cast<unsigned char>(line[pos + 1]))) {
            std::swap(line[pos], line[pos + 1]);
          }
        }
        break;
      }
      case 3: {  // drop one labeled line together with its label
        // Count labeled lines; keep at least 3 so the record stays usable.
        std::vector<size_t> labeled;
        for (size_t i = 0; i < lines.size(); ++i) {
          if (text::IsLabeledLine(lines[i])) labeled.push_back(i);
        }
        if (labeled.size() <= 3) break;
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(labeled.size()) - 1));
        lines.erase(lines.begin() + static_cast<ptrdiff_t>(labeled[pick]));
        record.labels.erase(record.labels.begin() +
                            static_cast<ptrdiff_t>(pick));
        record.sub_labels.erase(record.sub_labels.begin() +
                                static_cast<ptrdiff_t>(pick));
        break;
      }
    }
  }

  record.text = util::Join(lines, "\n");
  if (!record.text.empty()) record.text += "\n";
  // Case-mangling or typos can only change a labeled line's *content*, not
  // whether it is labeled (both preserve alphanumeric characters), so the
  // invariant holds; Validate() guards it in debug and tests.
  record.Validate();
}

}  // namespace

CorpusGenerator::CorpusGenerator(CorpusOptions options)
    : options_(options) {
  BuildFallbackCountryWeights();
}

void CorpusGenerator::BuildFallbackCountryWeights() {
  const auto countries = Countries();
  for (int year = options_.min_year; year <= options_.max_year; ++year) {
    // Global target mix for this year.
    std::vector<double> target = CountryWeightsForYear(year);
    double target_total = 0.0;
    for (double w : target) target_total += w;
    for (double& w : target) w /= target_total;

    // Volume-weighted tilt contribution per country, and total tilt mass.
    const auto reg_weights = registrars_.WeightsForYear(year);
    double reg_total = 0.0;
    for (double w : reg_weights) reg_total += w;
    std::vector<double> tilt_contrib(countries.size(), 0.0);
    double tilt_mass = 0.0;
    for (size_t r = 0; r < registrars_.size(); ++r) {
      const double reg_share = reg_weights[r] / reg_total;
      for (const auto& [cc, w] : registrars_.info(r).country_tilt) {
        const int ci = CountryIndex(cc);
        if (ci < 0) continue;
        tilt_contrib[static_cast<size_t>(ci)] += reg_share * w;
        tilt_mass += reg_share * w;
      }
    }

    // Solve target = tilt_contrib + (1 - tilt_mass) * fallback for the
    // fallback mix, clamping at zero where tilts overshoot the target.
    std::vector<double> fallback(countries.size(), 0.0);
    const double residual = std::max(1e-9, 1.0 - tilt_mass);
    double fallback_total = 0.0;
    for (size_t c = 0; c < countries.size(); ++c) {
      fallback[c] = std::max(0.0, (target[c] - tilt_contrib[c]) / residual);
      fallback_total += fallback[c];
    }
    for (double& w : fallback) w /= fallback_total;
    fallback_country_weights_.push_back(std::move(fallback));
  }
}

const std::vector<double>& CorpusGenerator::FallbackCountryWeights(
    int year) const {
  const int clamped =
      std::clamp(year, options_.min_year, options_.max_year);
  return fallback_country_weights_[static_cast<size_t>(
      clamped - options_.min_year)];
}

std::vector<double> CorpusGenerator::YearWeights() const {
  // Creation-date histogram shape of the surviving .com population
  // (Figure 4a): negligible through the early 90s, dot-com ramp, steady
  // exponential growth afterwards, ~25% of the corpus created in 2014.
  std::vector<double> weights;
  for (int year = options_.min_year; year <= options_.max_year; ++year) {
    double w;
    if (year < 1995) {
      w = 0.02 * (year - options_.min_year + 1);
    } else {
      // Survival-adjusted growth: the histogram rises faster than linearly.
      const double t = year - 1995;
      w = 0.25 * std::exp(0.205 * t);
    }
    weights.push_back(w);
  }
  return weights;
}

DomainFacts CorpusGenerator::MakeFacts(util::Rng& rng, size_t index) const {
  DomainFacts f;
  f.tld = "com";

  // Creation year, then registrar conditioned on year.
  const auto year_weights = YearWeights();
  f.created_year =
      options_.min_year + static_cast<int>(rng.WeightedIndex(year_weights));
  const size_t reg = registrars_.Sample(rng, f.created_year);
  const RegistrarInfo& info = registrars_.info(reg);
  f.registrar_index = static_cast<int>(reg);
  f.registrar_name = info.name;
  f.registrar_url = info.url;
  f.whois_server = info.whois_server;
  f.iana_id = info.iana_id;

  // Dates.
  f.created = IsoDate(rng, f.created_year);
  const int updated_year =
      static_cast<int>(rng.UniformInt(f.created_year, 2015));
  f.updated = IsoDate(rng, updated_year);
  f.expires = IsoDate(rng, 2015 + static_cast<int>(rng.UniformInt(0, 2)));

  // Domain name.
  f.domain = entities_.MakeDomainLabel(rng) + std::to_string(index % 9973) +
             "." + f.tld;

  // Name servers and statuses.
  const std::string ns_base =
      rng.Bernoulli(0.5)
          ? f.domain
          : util::ToLower(info.short_name) + "dns.com";
  f.name_servers = {"ns1." + ns_base, "ns2." + ns_base};
  f.statuses = {kStatuses[rng.UniformInt(0, 4)]};

  // Registrant country: registrar tilt first (Figure 5), else the global
  // per-year mix (Table 3 / Figure 4b).
  std::string country_code;
  double tilt_total = 0.0;
  for (const auto& [cc, w] : info.country_tilt) tilt_total += w;
  if (tilt_total > 0.0 && rng.Bernoulli(std::min(tilt_total, 1.0))) {
    std::vector<double> tw;
    tw.reserve(info.country_tilt.size());
    for (const auto& [cc, w] : info.country_tilt) tw.push_back(w);
    country_code = info.country_tilt[rng.WeightedIndex(tw)].first;
  } else {
    const size_t ci = rng.WeightedIndex(FallbackCountryWeights(f.created_year));
    country_code = std::string(Countries()[ci].code);
  }

  // Who owns it: brand company / bulk holder / regular registrant.
  const auto brands = pools::Brands();
  double brand_total = 0.0;
  for (const auto& b : brands) brand_total += b.paper_domains;
  double seller_total = 0.0;
  for (const auto& s : kSellers) seller_total += s.domains;
  const double corp_prob = std::min(
      0.05, options_.brand_boost * (brand_total + seller_total) / 102077202.0);

  if (rng.Bernoulli(corp_prob)) {
    std::vector<double> w;
    for (const auto& b : brands) w.push_back(b.paper_domains);
    for (const auto& s : kSellers) w.push_back(s.domains);
    const size_t pick = rng.WeightedIndex(w);
    const std::string_view org = pick < brands.size()
                                     ? brands[pick].company
                                     : std::string_view(
                                           kSellers[pick - brands.size()].org);
    f.registrant = entities_.MakeBrandContact(rng, org);
    f.admin = f.registrant;
    f.tech = f.registrant;
    return f;
  }

  // Privacy protection (per-year adoption x per-registrar propensity).
  const double privacy_rate =
      std::min(0.9, PrivacyRateForYear(f.created_year) * info.privacy_mult);
  f.privacy_protected = rng.Bernoulli(privacy_rate);
  if (f.privacy_protected) {
    f.privacy_service =
        std::string(SamplePrivacyService(rng, info.privacy_service));
    f.registrant = entities_.MakePrivacyContact(
        rng, f.privacy_service,
        f.domain.substr(0, f.domain.find('.')));
    f.admin = f.registrant;
    f.tech = f.registrant;
  } else {
    f.registrant = entities_.MakeContact(rng, country_code);
    // Admin/tech usually mirror the registrant; sometimes distinct.
    f.admin = rng.Bernoulli(0.8) ? f.registrant
                                 : entities_.MakeContact(rng, country_code);
    f.tech = rng.Bernoulli(0.7) ? f.admin
                                : entities_.MakeContact(rng, country_code);
  }

  // Blacklisting (DBL): mostly recent registrations, scaled by the
  // registrar and country abuse factors (Tables 8-9).
  const double base = f.created_year >= 2014 ? 0.0020
                      : f.created_year >= 2012 ? 0.0004
                                               : 0.0001;
  double country_factor = 1.0;
  const int ci = CountryIndex(f.registrant.country_code);
  if (ci >= 0) country_factor = Countries()[static_cast<size_t>(ci)].dbl_factor;
  const double p =
      std::min(0.5, base * info.dbl_factor * country_factor * options_.dbl_boost);
  f.on_dbl = rng.Bernoulli(p);
  return f;
}

GeneratedDomain CorpusGenerator::Generate(size_t index) const {
  util::Rng rng(options_.seed * 0x9E3779B97F4A7C15ULL + index * 2654435761ULL +
                17);
  GeneratedDomain out;
  out.facts = MakeFacts(rng, index);

  const RegistrarInfo& info =
      registrars_.info(static_cast<size_t>(out.facts.registrar_index));
  const int version = rng.Bernoulli(options_.drift_fraction) ? 1 : 0;
  const TemplateSpec& spec = templates_.Get(info.family, version);
  out.template_id = spec.id;
  out.thick = engine_.Render(spec, out.facts);
  if (options_.noise_fraction > 0.0 &&
      rng.Bernoulli(options_.noise_fraction)) {
    ApplyNoise(out.thick, rng);
  }
  return out;
}

std::vector<GeneratedDomain> CorpusGenerator::GenerateAll() const {
  std::vector<GeneratedDomain> out;
  out.reserve(options_.size);
  for (size_t i = 0; i < options_.size; ++i) out.push_back(Generate(i));
  return out;
}

GeneratedDomain CorpusGenerator::GenerateNewTld(const std::string& tld,
                                                uint64_t salt) const {
  util::Rng rng(options_.seed ^ (salt + 0xABCDEF) ^
                std::hash<std::string>{}(tld));
  GeneratedDomain out;
  out.facts = MakeFacts(rng, salt + 31337);
  out.facts.tld = tld;
  out.facts.domain =
      out.facts.domain.substr(0, out.facts.domain.find('.')) + "." + tld;
  // New TLDs are thick registries: a single registry-wide format (§5.2).
  const TemplateSpec& spec = templates_.NewTld(tld);
  out.template_id = spec.id;
  out.thick = engine_.Render(spec, out.facts);
  return out;
}

whois::LabeledRecord CorpusGenerator::RenderThin(
    const DomainFacts& facts) const {
  return engine_.RenderThin(facts);
}

}  // namespace whoiscrf::datagen
