#include "datagen/pools.h"

#include <array>

namespace whoiscrf::datagen::pools {

namespace {

using sv = std::string_view;

constexpr std::array kGenericFirst = {
    sv{"James"},  sv{"Mary"},    sv{"Robert"},  sv{"Patricia"}, sv{"John"},
    sv{"Jennifer"}, sv{"Michael"}, sv{"Linda"}, sv{"David"},    sv{"Elizabeth"},
    sv{"William"}, sv{"Barbara"}, sv{"Richard"}, sv{"Susan"},   sv{"Joseph"},
    sv{"Jessica"}, sv{"Thomas"},  sv{"Sarah"},   sv{"Charles"}, sv{"Karen"},
    sv{"Daniel"},  sv{"Nancy"},   sv{"Matthew"}, sv{"Lisa"},    sv{"Anthony"},
    sv{"Betty"},   sv{"Mark"},    sv{"Margaret"}, sv{"Donald"}, sv{"Sandra"},
    sv{"Steven"},  sv{"Ashley"},  sv{"Paul"},    sv{"Kimberly"}, sv{"Andrew"},
    sv{"Emily"},   sv{"Joshua"},  sv{"Donna"},   sv{"Kenneth"}, sv{"Michelle"},
};

constexpr std::array kGenericLast = {
    sv{"Smith"},   sv{"Johnson"},  sv{"Williams"}, sv{"Brown"},  sv{"Jones"},
    sv{"Garcia"},  sv{"Miller"},   sv{"Davis"},    sv{"Rodriguez"},
    sv{"Martinez"}, sv{"Hernandez"}, sv{"Lopez"},  sv{"Gonzalez"},
    sv{"Wilson"},  sv{"Anderson"}, sv{"Thomas"},   sv{"Taylor"}, sv{"Moore"},
    sv{"Jackson"}, sv{"Martin"},   sv{"Lee"},      sv{"Perez"},  sv{"Thompson"},
    sv{"White"},   sv{"Harris"},   sv{"Sanchez"},  sv{"Clark"},  sv{"Ramirez"},
    sv{"Lewis"},   sv{"Robinson"}, sv{"Walker"},   sv{"Young"},  sv{"Allen"},
    sv{"King"},    sv{"Wright"},   sv{"Scott"},    sv{"Torres"}, sv{"Nguyen"},
    sv{"Hill"},    sv{"Flores"},
};

constexpr std::array kChineseFirst = {
    sv{"Wei"},  sv{"Fang"}, sv{"Jun"},  sv{"Li"},   sv{"Min"},  sv{"Jing"},
    sv{"Yan"},  sv{"Lei"},  sv{"Qiang"}, sv{"Xia"}, sv{"Hui"},  sv{"Ming"},
};
constexpr std::array kChineseLast = {
    sv{"Wang"}, sv{"Li"},   sv{"Zhang"}, sv{"Liu"}, sv{"Chen"}, sv{"Yang"},
    sv{"Huang"}, sv{"Zhao"}, sv{"Wu"},   sv{"Zhou"}, sv{"Xu"},  sv{"Sun"},
};

constexpr std::array kJapaneseFirst = {
    sv{"Hiroshi"}, sv{"Takashi"}, sv{"Kenji"}, sv{"Yuki"},   sv{"Akira"},
    sv{"Naoko"},   sv{"Keiko"},   sv{"Satoshi"}, sv{"Haruto"}, sv{"Yui"},
};
constexpr std::array kJapaneseLast = {
    sv{"Sato"},   sv{"Suzuki"}, sv{"Takahashi"}, sv{"Tanaka"}, sv{"Watanabe"},
    sv{"Ito"},    sv{"Yamamoto"}, sv{"Nakamura"}, sv{"Kobayashi"},
    sv{"Kato"},
};

constexpr std::array kGermanFirst = {
    sv{"Hans"},  sv{"Anna"},   sv{"Klaus"}, sv{"Ursula"}, sv{"Peter"},
    sv{"Monika"}, sv{"Wolfgang"}, sv{"Petra"}, sv{"Juergen"}, sv{"Sabine"},
};
constexpr std::array kGermanLast = {
    sv{"Mueller"}, sv{"Schmidt"}, sv{"Schneider"}, sv{"Fischer"},
    sv{"Weber"},   sv{"Meyer"},   sv{"Wagner"},    sv{"Becker"},
    sv{"Schulz"},  sv{"Hoffmann"},
};

constexpr std::array kFrenchFirst = {
    sv{"Jean"},   sv{"Marie"},  sv{"Pierre"}, sv{"Sophie"}, sv{"Michel"},
    sv{"Isabelle"}, sv{"Philippe"}, sv{"Nathalie"}, sv{"Alain"}, sv{"Claire"},
};
constexpr std::array kFrenchLast = {
    sv{"Martin"}, sv{"Bernard"}, sv{"Dubois"}, sv{"Thomas"}, sv{"Robert"},
    sv{"Richard"}, sv{"Petit"},  sv{"Durand"}, sv{"Leroy"},  sv{"Moreau"},
};

constexpr std::array kSpanishFirst = {
    sv{"Antonio"}, sv{"Maria"},  sv{"Manuel"}, sv{"Carmen"}, sv{"Jose"},
    sv{"Ana"},     sv{"Francisco"}, sv{"Laura"}, sv{"Javier"}, sv{"Marta"},
};
constexpr std::array kSpanishLast = {
    sv{"Garcia"},  sv{"Fernandez"}, sv{"Gonzalez"}, sv{"Rodriguez"},
    sv{"Lopez"},   sv{"Martinez"},  sv{"Sanchez"},  sv{"Perez"},
    sv{"Gomez"},   sv{"Martin"},
};

constexpr std::array kIndianFirst = {
    sv{"Raj"},    sv{"Priya"},  sv{"Amit"},  sv{"Sunita"}, sv{"Vijay"},
    sv{"Anita"},  sv{"Sanjay"}, sv{"Deepa"}, sv{"Rahul"},  sv{"Kavita"},
};
constexpr std::array kIndianLast = {
    sv{"Sharma"}, sv{"Patel"},  sv{"Singh"},  sv{"Kumar"},  sv{"Gupta"},
    sv{"Verma"},  sv{"Reddy"},  sv{"Mehta"},  sv{"Joshi"},  sv{"Nair"},
};

constexpr std::array kTurkishFirst = {
    sv{"Mehmet"}, sv{"Ayse"}, sv{"Mustafa"}, sv{"Fatma"}, sv{"Ahmet"},
    sv{"Emine"},  sv{"Ali"},  sv{"Hatice"},  sv{"Huseyin"}, sv{"Zeynep"},
};
constexpr std::array kTurkishLast = {
    sv{"Yilmaz"}, sv{"Kaya"}, sv{"Demir"}, sv{"Celik"}, sv{"Sahin"},
    sv{"Yildiz"}, sv{"Aydin"}, sv{"Ozturk"}, sv{"Arslan"}, sv{"Dogan"},
};

constexpr std::array kVietnameseFirst = {
    sv{"Minh"}, sv{"Lan"},  sv{"Hung"}, sv{"Mai"},  sv{"Tuan"},
    sv{"Hoa"},  sv{"Duc"},  sv{"Thu"},  sv{"Quang"}, sv{"Linh"},
};
constexpr std::array kVietnameseLast = {
    sv{"Nguyen"}, sv{"Tran"}, sv{"Le"},   sv{"Pham"},  sv{"Hoang"},
    sv{"Phan"},   sv{"Vu"},   sv{"Dang"}, sv{"Bui"},   sv{"Do"},
};

constexpr std::array kRussianFirst = {
    sv{"Ivan"},   sv{"Olga"},   sv{"Dmitry"}, sv{"Elena"}, sv{"Sergey"},
    sv{"Natalia"}, sv{"Andrei"}, sv{"Irina"}, sv{"Alexei"}, sv{"Svetlana"},
};
constexpr std::array kRussianLast = {
    sv{"Ivanov"},  sv{"Smirnov"}, sv{"Kuznetsov"}, sv{"Popov"},
    sv{"Vasiliev"}, sv{"Petrov"}, sv{"Sokolov"},   sv{"Mikhailov"},
    sv{"Novikov"}, sv{"Fedorov"},
};

constexpr std::array kUsCities = {
    CityInfo{"New York", "NY", "10001"},
    CityInfo{"Los Angeles", "CA", "90001"},
    CityInfo{"Chicago", "IL", "60601"},
    CityInfo{"Houston", "TX", "77001"},
    CityInfo{"Phoenix", "AZ", "85001"},
    CityInfo{"San Diego", "CA", "92101"},
    CityInfo{"Dallas", "TX", "75201"},
    CityInfo{"Seattle", "WA", "98101"},
    CityInfo{"Denver", "CO", "80201"},
    CityInfo{"Boston", "MA", "02108"},
    CityInfo{"Scottsdale", "AZ", "85260"},
    CityInfo{"Atlanta", "GA", "30301"},
};
constexpr std::array kCnCities = {
    CityInfo{"Beijing", "", "100000"},  CityInfo{"Shanghai", "", "200000"},
    CityInfo{"Guangzhou", "", "510000"}, CityInfo{"Shenzhen", "", "518000"},
    CityInfo{"Hangzhou", "", "310000"}, CityInfo{"Chengdu", "", "610000"},
    CityInfo{"Nanjing", "", "210000"},  CityInfo{"Wuhan", "", "430000"},
};
constexpr std::array kGbCities = {
    CityInfo{"London", "", "SW1A 1AA"},  CityInfo{"Manchester", "", "M1 1AE"},
    CityInfo{"Birmingham", "", "B1 1AA"}, CityInfo{"Leeds", "", "LS1 1UR"},
    CityInfo{"Glasgow", "", "G1 1XQ"},   CityInfo{"Bristol", "", "BS1 4DJ"},
};
constexpr std::array kDeCities = {
    CityInfo{"Berlin", "", "10115"},  CityInfo{"Hamburg", "", "20095"},
    CityInfo{"Munich", "", "80331"},  CityInfo{"Cologne", "", "50667"},
    CityInfo{"Frankfurt", "", "60311"}, CityInfo{"Stuttgart", "", "70173"},
};
constexpr std::array kFrCities = {
    CityInfo{"Paris", "", "75001"},  CityInfo{"Lyon", "", "69001"},
    CityInfo{"Marseille", "", "13001"}, CityInfo{"Toulouse", "", "31000"},
    CityInfo{"Nice", "", "06000"},   CityInfo{"Nantes", "", "44000"},
};
constexpr std::array kCaCities = {
    CityInfo{"Toronto", "ON", "M5H 2N2"},  CityInfo{"Vancouver", "BC", "V5K 0A1"},
    CityInfo{"Montreal", "QC", "H2Y 1C6"}, CityInfo{"Calgary", "AB", "T2P 1J9"},
    CityInfo{"Ottawa", "ON", "K1P 1J1"},
};
constexpr std::array kEsCities = {
    CityInfo{"Madrid", "", "28001"},   CityInfo{"Barcelona", "", "08001"},
    CityInfo{"Valencia", "", "46001"}, CityInfo{"Seville", "", "41001"},
};
constexpr std::array kAuCities = {
    CityInfo{"Sydney", "NSW", "2000"},   CityInfo{"Melbourne", "VIC", "3000"},
    CityInfo{"Brisbane", "QLD", "4000"}, CityInfo{"Perth", "WA", "6000"},
};
constexpr std::array kJpCities = {
    CityInfo{"Tokyo", "", "100-0001"},  CityInfo{"Osaka", "", "530-0001"},
    CityInfo{"Nagoya", "", "450-0002"}, CityInfo{"Fukuoka", "", "810-0001"},
    CityInfo{"Sapporo", "", "060-0001"},
};
constexpr std::array kInCities = {
    CityInfo{"Mumbai", "MH", "400001"},   CityInfo{"Delhi", "DL", "110001"},
    CityInfo{"Bangalore", "KA", "560001"}, CityInfo{"Chennai", "TN", "600001"},
    CityInfo{"Hyderabad", "TG", "500001"},
};
constexpr std::array kTrCities = {
    CityInfo{"Istanbul", "", "34000"}, CityInfo{"Ankara", "", "06000"},
    CityInfo{"Izmir", "", "35000"},    CityInfo{"Bursa", "", "16000"},
};
constexpr std::array kVnCities = {
    CityInfo{"Hanoi", "", "100000"},       CityInfo{"Ho Chi Minh City", "", "700000"},
    CityInfo{"Da Nang", "", "550000"},
};
constexpr std::array kRuCities = {
    CityInfo{"Moscow", "", "101000"},  CityInfo{"Saint Petersburg", "", "190000"},
    CityInfo{"Novosibirsk", "", "630000"},
};

constexpr std::array kStreetStems = {
    sv{"Main"},    sv{"Oak"},     sv{"Maple"},  sv{"Cedar"},  sv{"Park"},
    sv{"Pine"},    sv{"Lake"},    sv{"Hill"},   sv{"River"},  sv{"Sunset"},
    sv{"Washington"}, sv{"Lincoln"}, sv{"Jackson"}, sv{"Franklin"},
    sv{"Jefferson"}, sv{"Madison"}, sv{"Highland"}, sv{"Valley"},
    sv{"Spring"},  sv{"Center"},  sv{"Church"}, sv{"Market"}, sv{"Broad"},
    sv{"Commerce"}, sv{"Industrial"}, sv{"Technology"}, sv{"Innovation"},
};
constexpr std::array kStreetSuffixes = {
    sv{"St"},   sv{"Ave"},  sv{"Blvd"}, sv{"Dr"},  sv{"Rd"},
    sv{"Ln"},   sv{"Way"},  sv{"Ct"},   sv{"Pl"},  sv{"Street"},
    sv{"Avenue"}, sv{"Road"},
};

constexpr std::array kOrgStems = {
    sv{"Pacific"},  sv{"Global"},   sv{"Summit"},   sv{"Pioneer"},
    sv{"Horizon"},  sv{"Vertex"},   sv{"Quantum"},  sv{"Stellar"},
    sv{"Cascade"},  sv{"Beacon"},   sv{"Evergreen"}, sv{"Granite"},
    sv{"Silverline"}, sv{"Bluewave"}, sv{"Redwood"}, sv{"Ironwood"},
    sv{"Northstar"}, sv{"Crestview"}, sv{"Lakeside"}, sv{"Brightpath"},
    sv{"Sunrise"},  sv{"Velocity"}, sv{"Apex"},     sv{"Fusion"},
    sv{"Catalyst"}, sv{"Momentum"}, sv{"Keystone"}, sv{"Trailhead"},
};
constexpr std::array kOrgSuffixesUs = {
    sv{"LLC"}, sv{"Inc."}, sv{"Corp."}, sv{"Co."}, sv{"Group"},
    sv{"Holdings"}, sv{"Ventures"}, sv{"Solutions"}, sv{"Media"},
    sv{"Consulting"},
};
constexpr std::array kOrgSuffixesDe = {sv{"GmbH"}, sv{"AG"}, sv{"KG"}};
constexpr std::array kOrgSuffixesFr = {sv{"SARL"}, sv{"SAS"}, sv{"SA"}};
constexpr std::array kOrgSuffixesJp = {sv{"K.K."}, sv{"Co., Ltd."},
                                       sv{"Inc."}};
constexpr std::array kOrgSuffixesCn = {sv{"Technology Co., Ltd."},
                                       sv{"Network Co., Ltd."},
                                       sv{"Trading Co., Ltd."}};
constexpr std::array kOrgSuffixesGb = {sv{"Ltd"}, sv{"Ltd."}, sv{"PLC"},
                                       sv{"Limited"}};

constexpr std::array kEmailProviders = {
    sv{"gmail.com"},   sv{"yahoo.com"}, sv{"hotmail.com"}, sv{"outlook.com"},
    sv{"aol.com"},     sv{"mail.com"},  sv{"163.com"},     sv{"qq.com"},
    sv{"126.com"},     sv{"yandex.ru"}, sv{"web.de"},      sv{"gmx.de"},
    sv{"orange.fr"},   sv{"yahoo.co.jp"},
};

constexpr std::array kDomainWords = {
    sv{"shop"},   sv{"tech"},   sv{"cloud"},  sv{"data"},   sv{"web"},
    sv{"media"},  sv{"store"},  sv{"market"}, sv{"trade"},  sv{"travel"},
    sv{"home"},   sv{"life"},   sv{"health"}, sv{"smart"},  sv{"green"},
    sv{"blue"},   sv{"fast"},   sv{"easy"},   sv{"best"},   sv{"top"},
    sv{"pro"},    sv{"net"},    sv{"hub"},    sv{"lab"},    sv{"zone"},
    sv{"world"},  sv{"city"},   sv{"line"},   sv{"link"},   sv{"page"},
    sv{"digital"}, sv{"global"}, sv{"prime"}, sv{"plus"},   sv{"max"},
    sv{"gold"},   sv{"star"},   sv{"nova"},   sv{"alpha"},  sv{"meta"},
};

constexpr std::array kBrands = {
    Brand{"Amazon", 20596},
    Brand{"AOL", 17136},
    Brand{"Microsoft", 16694},
    Brand{"21st Century Fox", 14249},
    Brand{"Warner Bros.", 13674},
    Brand{"Yahoo", 10502},
    Brand{"Disney", 10342},
    Brand{"Google", 6612},
    Brand{"AT&T", 3931},
    Brand{"eBay", 2570},
    Brand{"Nike", 2566},
};

constexpr std::array kBoilerplates = {
    sv{"The data in this whois database is provided to you for information\n"
       "purposes only, that is, to assist you in obtaining information about\n"
       "or related to a domain name registration record. We make this\n"
       "information available as is, and do not guarantee its accuracy."},
    sv{"TERMS OF USE: You are not authorized to access or query our Whois\n"
       "database through the use of electronic processes that are high-volume\n"
       "and automated. Whois database is provided as a service to the internet\n"
       "community."},
    sv{"NOTICE: The expiration date displayed in this record is the date the\n"
       "registrar's sponsorship of the domain name registration in the registry\n"
       "is currently set to expire. This date does not necessarily reflect the\n"
       "expiration date of the domain name registrant's agreement with the\n"
       "sponsoring registrar."},
    sv{"By submitting a WHOIS query, you agree that you will use this data\n"
       "only for lawful purposes and that, under no circumstances will you use\n"
       "this data to allow, enable, or otherwise support the transmission of\n"
       "mass unsolicited, commercial advertising or solicitations."},
    sv{"For more information on Whois status codes, please visit\n"
       "https://www.icann.org/epp"},
    sv{"Registration Service Provided By: the sponsoring registrar listed\n"
       "above. Please contact the registrar for domain related issues."},
};

}  // namespace

std::span<const std::string_view> GenericFirstNames() { return kGenericFirst; }
std::span<const std::string_view> GenericLastNames() { return kGenericLast; }

std::span<const std::string_view> FirstNames(std::string_view cc) {
  if (cc == "CN") return kChineseFirst;
  if (cc == "JP") return kJapaneseFirst;
  if (cc == "DE") return kGermanFirst;
  if (cc == "FR") return kFrenchFirst;
  if (cc == "ES") return kSpanishFirst;
  if (cc == "IN") return kIndianFirst;
  if (cc == "TR") return kTurkishFirst;
  if (cc == "VN") return kVietnameseFirst;
  if (cc == "RU") return kRussianFirst;
  return {};
}

std::span<const std::string_view> LastNames(std::string_view cc) {
  if (cc == "CN") return kChineseLast;
  if (cc == "JP") return kJapaneseLast;
  if (cc == "DE") return kGermanLast;
  if (cc == "FR") return kFrenchLast;
  if (cc == "ES") return kSpanishLast;
  if (cc == "IN") return kIndianLast;
  if (cc == "TR") return kTurkishLast;
  if (cc == "VN") return kVietnameseLast;
  if (cc == "RU") return kRussianLast;
  return {};
}

std::span<const CityInfo> Cities(std::string_view cc) {
  if (cc == "CN") return kCnCities;
  if (cc == "GB") return kGbCities;
  if (cc == "DE") return kDeCities;
  if (cc == "FR") return kFrCities;
  if (cc == "CA") return kCaCities;
  if (cc == "ES") return kEsCities;
  if (cc == "AU") return kAuCities;
  if (cc == "JP") return kJpCities;
  if (cc == "IN") return kInCities;
  if (cc == "TR") return kTrCities;
  if (cc == "VN") return kVnCities;
  if (cc == "RU") return kRuCities;
  return kUsCities;
}

std::span<const std::string_view> StreetStems() { return kStreetStems; }
std::span<const std::string_view> StreetSuffixes() { return kStreetSuffixes; }
std::span<const std::string_view> OrgStems() { return kOrgStems; }

std::span<const std::string_view> OrgSuffixes(std::string_view cc) {
  if (cc == "DE") return kOrgSuffixesDe;
  if (cc == "FR") return kOrgSuffixesFr;
  if (cc == "JP") return kOrgSuffixesJp;
  if (cc == "CN") return kOrgSuffixesCn;
  if (cc == "GB") return kOrgSuffixesGb;
  return kOrgSuffixesUs;
}

std::span<const std::string_view> EmailProviders() { return kEmailProviders; }
std::span<const std::string_view> DomainWords() { return kDomainWords; }
std::span<const Brand> Brands() { return kBrands; }
std::span<const std::string_view> Boilerplates() { return kBoilerplates; }

}  // namespace whoiscrf::datagen::pools
