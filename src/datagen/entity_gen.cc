#include "datagen/entity_gen.h"

#include <cctype>

#include "datagen/country_data.h"
#include "datagen/pools.h"
#include "util/string_util.h"

namespace whoiscrf::datagen {

namespace {

std::string PickSv(util::Rng& rng, std::span<const std::string_view> pool) {
  return std::string(pool[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))]);
}

std::string CountryCallingPrefix(std::string_view cc) {
  if (cc == "US" || cc == "CA") return "+1";
  if (cc == "GB") return "+44";
  if (cc == "DE") return "+49";
  if (cc == "FR") return "+33";
  if (cc == "ES") return "+34";
  if (cc == "AU") return "+61";
  if (cc == "JP") return "+81";
  if (cc == "CN") return "+86";
  if (cc == "IN") return "+91";
  if (cc == "TR") return "+90";
  if (cc == "VN") return "+84";
  if (cc == "RU") return "+7";
  if (cc == "HK") return "+852";
  return "+1";
}

}  // namespace

std::string EntityGenerator::MakePhone(util::Rng& rng,
                                       std::string_view cc) const {
  auto digits = [&](int n) {
    std::string out;
    for (int i = 0; i < n; ++i) {
      out += static_cast<char>('0' + rng.UniformInt(0, 9));
    }
    return out;
  };
  const int style = static_cast<int>(rng.UniformInt(0, 2));
  if (cc == "US" || cc == "CA") {
    const std::string area = std::to_string(rng.UniformInt(201, 989));
    switch (style) {
      case 0: return "+1." + area + digits(7);
      case 1: return "(" + area + ") " + digits(3) + "-" + digits(4);
      default: return area + "-" + digits(3) + "-" + digits(4);
    }
  }
  const std::string prefix = CountryCallingPrefix(cc);
  switch (style) {
    case 0: return prefix + "." + digits(9);
    case 1: return prefix + " " + digits(2) + " " + digits(4) + " " + digits(4);
    default: return prefix + "-" + digits(9);
  }
}

ContactFacts EntityGenerator::MakeContact(util::Rng& rng,
                                          std::string_view cc,
                                          double org_probability) const {
  ContactFacts c;

  auto firsts = pools::FirstNames(cc);
  auto lasts = pools::LastNames(cc);
  if (firsts.empty()) firsts = pools::GenericFirstNames();
  if (lasts.empty()) lasts = pools::GenericLastNames();
  const std::string first = PickSv(rng, firsts);
  const std::string last = PickSv(rng, lasts);
  c.name = first + " " + last;

  if (rng.Bernoulli(org_probability)) {
    c.org = PickSv(rng, pools::OrgStems()) + " " +
            PickSv(rng, pools::OrgSuffixes(cc));
  }

  const auto cities = pools::Cities(cc.empty() ? "US" : cc);
  const auto& city = cities[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(cities.size()) - 1))];
  c.city = std::string(city.city);
  c.state = std::string(city.state);
  c.postcode = std::string(city.postcode);
  // Vary US ZIPs beyond the representative one.
  if ((cc == "US" || cc.empty()) && c.postcode.size() == 5) {
    c.postcode = std::to_string(rng.UniformInt(10000, 99950));
  }

  c.street1 = std::to_string(rng.UniformInt(1, 9999)) + " " +
              PickSv(rng, pools::StreetStems()) + " " +
              PickSv(rng, pools::StreetSuffixes());
  if (rng.Bernoulli(0.2)) {
    c.street2 = "Suite " + std::to_string(rng.UniformInt(100, 999));
  }

  if (!cc.empty()) {
    c.country_code = std::string(cc);
    c.country_name = std::string(CountryDisplayName(cc));
  }

  c.phone = MakePhone(rng, cc);
  if (rng.Bernoulli(0.35)) c.fax = MakePhone(rng, cc);

  const std::string user =
      util::ToLower(first) + "." + util::ToLower(last) +
      std::to_string(rng.UniformInt(1, 99));
  c.email = user + "@" + PickSv(rng, pools::EmailProviders());

  if (rng.Bernoulli(0.5)) {
    c.id = util::Format("C%lld-LRMS",
                        static_cast<long long>(rng.UniformInt(100000, 9999999)));
  }
  return c;
}

ContactFacts EntityGenerator::MakePrivacyContact(
    util::Rng& rng, std::string_view service_name,
    std::string_view domain) const {
  ContactFacts c;
  c.name = std::string(service_name);
  c.org = std::string(service_name);
  // Privacy services host proxy contacts at a handful of well-known
  // addresses; use a stable US mail-drop shape.
  c.street1 = util::Format("%lld N Hayden Rd",
                           static_cast<long long>(rng.UniformInt(100, 19999)));
  c.street2 = util::Format("Suite %lld",
                           static_cast<long long>(rng.UniformInt(100, 400)));
  c.city = "Scottsdale";
  c.state = "AZ";
  c.postcode = "85260";
  c.country_code = "US";
  c.country_name = "United States";
  c.phone = MakePhone(rng, "US");
  std::string service_domain = util::ToLower(service_name);
  std::string compact;
  for (char ch : service_domain) {
    if (ch != ' ' && ch != '.' && ch != ',') compact += ch;
  }
  c.email = std::string(domain) + "@" + compact + ".com";
  return c;
}

ContactFacts EntityGenerator::MakeBrandContact(
    util::Rng& rng, std::string_view company) const {
  ContactFacts c;
  c.name = "Domain Administrator";
  c.org = std::string(company);
  c.street1 = std::to_string(rng.UniformInt(1, 999)) + " " +
              PickSv(rng, pools::StreetStems()) + " " +
              PickSv(rng, pools::StreetSuffixes());
  const auto cities = pools::Cities("US");
  const auto& city = cities[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(cities.size()) - 1))];
  c.city = std::string(city.city);
  c.state = std::string(city.state);
  c.postcode = std::string(city.postcode);
  c.country_code = "US";
  c.country_name = "United States";
  c.phone = MakePhone(rng, "US");
  std::string compact;
  for (char ch : company) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      compact += static_cast<char>(
          std::tolower(static_cast<unsigned char>(ch)));
    }
  }
  c.email = "hostmaster@" + compact + ".com";
  return c;
}

std::string EntityGenerator::MakeDomainLabel(util::Rng& rng) const {
  const auto words = pools::DomainWords();
  std::string label = PickSv(rng, words);
  label += PickSv(rng, words);
  if (rng.Bernoulli(0.4)) {
    label += std::to_string(rng.UniformInt(1, 999));
  }
  return label;
}

}  // namespace whoiscrf::datagen
