// DomainFacts: everything true about one registered domain, independent of
// how any registrar chooses to format it. Templates render facts into
// labeled WHOIS records; the survey benches compare parser output against
// these facts directly.
#pragma once

#include <string>
#include <vector>

namespace whoiscrf::datagen {

struct ContactFacts {
  std::string name;
  std::string org;        // may be empty for individuals
  std::string street1;
  std::string street2;    // may be empty
  std::string city;
  std::string state;      // may be empty outside US/CA/AU
  std::string postcode;
  std::string country_code;  // ISO-ish 2-letter, may be empty ("unknown")
  std::string country_name;  // display name, may be empty
  std::string phone;
  std::string fax;        // may be empty
  std::string email;
  std::string id;         // registry contact handle, may be empty
};

struct DomainFacts {
  std::string domain;           // fully qualified, lower-case
  std::string tld;              // "com", "biz", ...
  int registrar_index = 0;      // index into the registrar table
  std::string registrar_name;   // display name
  std::string registrar_url;
  std::string whois_server;     // registrar's WHOIS server hostname
  std::string iana_id;          // registrar IANA id, may be empty

  int created_year = 2010;
  std::string created;          // preformatted per-template later; ISO here
  std::string updated;
  std::string expires;

  std::vector<std::string> name_servers;
  std::vector<std::string> statuses;

  ContactFacts registrant;
  ContactFacts admin;           // often identical to registrant
  ContactFacts tech;

  bool privacy_protected = false;
  std::string privacy_service;  // display name when protected

  bool on_dbl = false;          // appears on the (simulated) spam blacklist
};

}  // namespace whoiscrf::datagen
