#include "datagen/privacy.h"

#include <algorithm>
#include <array>
#include <vector>

#include "util/string_util.h"

namespace whoiscrf::datagen {

namespace {

// Table 7 shares. "Other" is modeled by the generic entries at the bottom
// (the paper: "the names used in the WHOIS records for protected domains do
// not always correspond to organizations that we could identify").
constexpr std::array<PrivacyService, 14> kServices = {{
    {"Domains By Proxy", 0.357},
    {"WhoisGuard", 0.069},
    {"Whois Privacy Protect", 0.068},
    {"FBO REGISTRANT", 0.049},
    {"PrivacyProtect.org", 0.042},
    {"Aliyun", 0.039},
    {"Perfect Privacy", 0.034},
    {"Happy DreamHost", 0.028},
    {"MuuMuuDomain", 0.022},
    {"1&1 Internet", 0.020},
    {"Private Registration", 0.090},
    {"Hidden by Whois Privacy Protection Service", 0.070},
    {"Contact Privacy", 0.060},
    {"Moniker Privacy Services", 0.052},
}};

}  // namespace

std::span<const PrivacyService> PrivacyServices() { return kServices; }

double PrivacyRateForYear(int year) {
  // Services appeared around 2002 (Domains By Proxy launched then) and
  // adoption grew roughly linearly, passing 20% of new registrations by
  // 2014 (Figure 4b).
  if (year < 2002) return 0.0;
  const double t = std::min(1.0, (static_cast<double>(year) - 2002.0) / 12.0);
  return 0.22 * t;
}

std::string_view SamplePrivacyService(util::Rng& rng,
                                      std::string_view registrar_service) {
  // Registrars funnel most protected registrations through their house
  // service(s) (Domains By Proxy is owned by GoDaddy's founder, §6.3).
  // A '|'-separated list splits the house traffic across services.
  if (!registrar_service.empty() && rng.Bernoulli(0.85)) {
    const auto choices = util::Split(registrar_service, '|');
    const std::string_view pick = choices[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(choices.size()) - 1))];
    // Return a view into the static service table so lifetimes are safe.
    for (const auto& s : kServices) {
      if (s.name == pick) return s.name;
    }
    return kServices.front().name;
  }
  std::vector<double> weights;
  weights.reserve(kServices.size());
  for (const auto& s : kServices) weights.push_back(s.share);
  return kServices[rng.WeightedIndex(weights)].name;
}

}  // namespace whoiscrf::datagen
