// TemplateSpec: a declarative description of one registrar's WHOIS record
// format. The engine renders a spec against DomainFacts to produce both the
// record text and its ground-truth line labels — the synthetic equivalent
// of the paper's hand-labeled 86K corpus, correct by construction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "whois/labels.h"

namespace whoiscrf::datagen {

// The value a field element pulls from DomainFacts.
enum class Slot {
  kDomainName,
  kRegistrarName,
  kRegistrarUrl,
  kWhoisServer,
  kIanaId,
  kNameServers,   // expands to one line per name server
  kStatuses,      // expands to one line per status
  kDnssec,
  kCreated,
  kUpdated,
  kExpires,
  // Registrant contact.
  kRegName,
  kRegId,
  kRegOrg,
  kRegStreet,     // expands to one line per street line
  kRegCity,
  kRegState,
  kRegPostcode,
  kRegCountryCode,
  kRegCountryName,
  kRegCityStateZip,   // "San Diego, CA 92093" composite
  kRegPhone,
  kRegFax,
  kRegEmail,
  // Admin/tech contacts (rendered under label `other`).
  kAdminName,
  kAdminEmail,
  kAdminPhone,
  kTechName,
  kTechEmail,
  kTechPhone,
  kLiteral,       // element's `literal` string, no fact lookup
};

enum class Casing { kAsIs, kUpper, kLower };

// One element of a template. Elements render to zero or more lines.
struct Element {
  enum class Kind {
    kField,       // "<title><sep><value>" (or bare value if title empty)
    kHeader,      // a block header line, e.g. "Registrant:" or "[Registrant]"
    kBlank,       // empty line
    kBoilerplate, // multi-line literal text, every line labeled
  };

  Kind kind = Kind::kField;
  whois::Level1Label label = whois::Level1Label::kNull;
  std::optional<whois::Level2Label> sub;  // for registrant lines

  std::string title;      // field title or header text (pre-separator)
  Slot slot = Slot::kLiteral;
  std::string literal;    // for kLiteral slots and kBoilerplate text
  bool indent = false;    // indent this line per the template's block style
  bool skip_if_empty = true;  // omit the line when the value is empty
};

// Date formats used across real registrars.
enum class DateStyle {
  kIso,          // 2014-03-02
  kIsoTime,      // 2014-03-02T18:11:03Z
  kDMonY,        // 02-Mar-2014
  kSlashes,      // 2014/03/02
  kUsSlashes,    // 03/02/2014
};

struct TemplateSpec {
  std::string id;           // stable template identifier, e.g. "godaddy/v0"
  std::string separator = ": ";   // between title and value
  std::string indent = "   ";     // prefix for indented block members
  Casing title_casing = Casing::kAsIs;
  Casing value_casing = Casing::kAsIs;
  DateStyle date_style = DateStyle::kIsoTime;
  std::vector<Element> elements;
};

// --- Element construction helpers (used by the template library) --------

inline Element Field(whois::Level1Label l1, std::string title, Slot slot,
                     std::optional<whois::Level2Label> sub = std::nullopt) {
  Element e;
  e.kind = Element::Kind::kField;
  e.label = l1;
  e.sub = sub;
  e.title = std::move(title);
  e.slot = slot;
  return e;
}

inline Element RegField(std::string title, Slot slot,
                        whois::Level2Label sub) {
  return Field(whois::Level1Label::kRegistrant, std::move(title), slot, sub);
}

inline Element Header(whois::Level1Label l1, std::string text) {
  Element e;
  e.kind = Element::Kind::kHeader;
  e.label = l1;
  e.title = std::move(text);
  return e;
}

inline Element Blank() {
  Element e;
  e.kind = Element::Kind::kBlank;
  return e;
}

inline Element Boilerplate(std::string text) {
  Element e;
  e.kind = Element::Kind::kBoilerplate;
  e.label = whois::Level1Label::kNull;
  e.literal = std::move(text);
  return e;
}

inline Element Literal(whois::Level1Label l1, std::string title,
                       std::string value,
                       std::optional<whois::Level2Label> sub = std::nullopt) {
  Element e;
  e.kind = Element::Kind::kField;
  e.label = l1;
  e.sub = sub;
  e.title = std::move(title);
  e.slot = Slot::kLiteral;
  e.literal = std::move(value);
  return e;
}

}  // namespace whoiscrf::datagen
