// Country registration mix, parameterized by the paper's own survey numbers
// (Table 3, Figure 4b, Table 8): per-country shares for the all-time
// snapshot and for 2014 registrations, interpolated per creation year so
// the synthetic corpus reproduces the temporal trends the paper reports
// (declining US share, rising Chinese share).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"

namespace whoiscrf::datagen {

struct CountryProfile {
  std::string_view code;        // "US"; empty string = unknown country
  std::string_view name;        // "United States"
  double share_1998;            // share of registrations created ~1998
  double share_2014;            // share of registrations created in 2014
  double dbl_factor;            // relative blacklist propensity (Table 8)
};

// The modeled countries. The final entry (code "") models records whose
// registrant country is missing ("Unknown" in Table 3).
std::span<const CountryProfile> Countries();

// Index into Countries() for a code, or -1.
int CountryIndex(std::string_view code);

// Per-year sampling weights over Countries(): linear interpolation between
// share_1998 and share_2014, clamped to [1998, 2014].
std::vector<double> CountryWeightsForYear(int year);

// Draws a country index for a registration created in `year`.
int SampleCountry(util::Rng& rng, int year);

// Display name for a country code ("United States"), empty for unknown.
std::string_view CountryDisplayName(std::string_view code);

}  // namespace whoiscrf::datagen
