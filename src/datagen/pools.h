// Static data pools used by the entity generator: person names, cities,
// streets, organizations, brand companies (paper Table 4), and boilerplate
// legalese paragraphs. Per-country pools exist for the countries the paper's
// survey highlights; everything else falls back to the generic pools.
#pragma once

#include <span>
#include <string_view>

namespace whoiscrf::datagen::pools {

struct CityInfo {
  std::string_view city;
  std::string_view state;     // empty when the country doesn't use states
  std::string_view postcode;  // representative postcode for the city
};

// Generic (Western) name pools.
std::span<const std::string_view> GenericFirstNames();
std::span<const std::string_view> GenericLastNames();

// Country-specific name pools; empty span when none (use generic).
std::span<const std::string_view> FirstNames(std::string_view country_code);
std::span<const std::string_view> LastNames(std::string_view country_code);

// Cities with state/postcode, per country; falls back to US cities.
std::span<const CityInfo> Cities(std::string_view country_code);

// Street name stems ("Main", "Oak", ...) and suffixes ("St", "Ave", ...).
std::span<const std::string_view> StreetStems();
std::span<const std::string_view> StreetSuffixes();

// Organization name parts: stems + suffixes ("LLC", "Inc.", "GmbH", ...).
std::span<const std::string_view> OrgStems();
std::span<const std::string_view> OrgSuffixes(std::string_view country_code);

// Free email providers for individuals.
std::span<const std::string_view> EmailProviders();

// Words used to build synthetic domain names.
std::span<const std::string_view> DomainWords();

// Brand companies and their approximate .com domain counts (Table 4).
struct Brand {
  std::string_view company;
  int paper_domains;  // count the paper reports
};
std::span<const Brand> Brands();

// Boilerplate/legalese paragraph variants (labeled null).
std::span<const std::string_view> Boilerplates();

}  // namespace whoiscrf::datagen::pools
