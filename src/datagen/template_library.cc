#include "datagen/template_library.h"

#include <array>
#include <stdexcept>

#include "datagen/pools.h"
#include "util/random.h"
#include "util/string_util.h"

namespace whoiscrf::datagen {

namespace {

using L = whois::Level1Label;
using S = whois::Level2Label;

// --- Title synonym pools (used by drift and by synthesized families) ----

struct SynonymSet {
  Slot slot;
  std::vector<const char*> titles;
};

const std::vector<SynonymSet>& Synonyms() {
  static const std::vector<SynonymSet> kSynonyms = {
      {Slot::kDomainName,
       {"Domain Name", "Domain", "domain name", "Domain_Name", "DOMAIN"}},
      {Slot::kRegistrarName,
       {"Registrar", "Sponsoring Registrar", "Registration Service Provider",
        "Registered through", "Registrar of Record"}},
      {Slot::kWhoisServer, {"Whois Server", "Registrar WHOIS Server"}},
      {Slot::kRegistrarUrl,
       {"Referral URL", "Registrar URL", "Registrar Website"}},
      {Slot::kNameServers,
       {"Name Server", "Nameservers", "DNS", "nserver", "Name servers",
        "Domain servers in listed order"}},
      {Slot::kStatuses, {"Status", "Domain Status", "status"}},
      {Slot::kCreated,
       {"Creation Date", "Created On", "Created", "Registered on",
        "Registration Date", "Record created on", "Created Date"}},
      {Slot::kUpdated,
       {"Updated Date", "Last Updated On", "Last Modified",
        "Record last updated", "Last Updated", "Last updated on"}},
      {Slot::kExpires,
       {"Expiration Date", "Registry Expiry Date", "Expires On",
        "Record expires on", "Renewal date", "Expiry Date", "Expires"}},
      {Slot::kRegName,
       {"Registrant Name", "Owner Name", "Holder Name",
        "Registrant Contact Name", "Registrant"}},
      {Slot::kRegId, {"Registry Registrant ID", "Registrant ID", "nic-hdl"}},
      {Slot::kRegOrg,
       {"Registrant Organization", "Organization", "Owner Organization",
        "Company", "Registrant Org"}},
      {Slot::kRegStreet,
       {"Registrant Street", "Registrant Address", "Address", "Street",
        "Registrant Address1"}},
      {Slot::kRegCity, {"Registrant City", "City"}},
      {Slot::kRegState,
       {"Registrant State/Province", "State", "State/Province", "Province"}},
      {Slot::kRegPostcode,
       {"Registrant Postal Code", "Postal Code", "Zip", "Zip Code",
        "Postcode"}},
      {Slot::kRegCountryCode, {"Registrant Country", "Country", "Country Code"}},
      {Slot::kRegCountryName, {"Registrant Country", "Country"}},
      {Slot::kRegPhone, {"Registrant Phone", "Phone", "Phone Number", "Tel"}},
      {Slot::kRegFax, {"Registrant Fax", "Fax", "Fax Number"}},
      {Slot::kRegEmail,
       {"Registrant Email", "Email", "E-mail", "Email Address",
        "Registrant E-mail"}},
  };
  return kSynonyms;
}

const std::vector<const char*>* SynonymsForSlot(Slot slot) {
  for (const auto& s : Synonyms()) {
    if (s.slot == slot) return &s.titles;
  }
  return nullptr;
}

// --- Shared builders -----------------------------------------------------

// ICANN-2013-style flat key-value record (GoDaddy and many others).
std::vector<Element> IcannFlat(bool with_ids, bool with_admin_tech) {
  std::vector<Element> e;
  e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
  if (with_ids) {
    e.push_back(Field(L::kRegistrar, "Registrar WHOIS Server", Slot::kWhoisServer));
    e.push_back(Field(L::kRegistrar, "Registrar URL", Slot::kRegistrarUrl));
  }
  e.push_back(Field(L::kDate, "Updated Date", Slot::kUpdated));
  e.push_back(Field(L::kDate, "Creation Date", Slot::kCreated));
  e.push_back(Field(L::kDate, "Registrar Registration Expiration Date",
                    Slot::kExpires));
  e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
  if (with_ids) {
    e.push_back(Field(L::kRegistrar, "Registrar IANA ID", Slot::kIanaId));
  }
  e.push_back(Field(L::kDomain, "Domain Status", Slot::kStatuses));
  e.push_back(Field(L::kRegistrant, "Registry Registrant ID", Slot::kRegId,
                    S::kId));
  e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
  e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
  e.push_back(RegField("Registrant Street", Slot::kRegStreet, S::kStreet));
  e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
  e.push_back(RegField("Registrant State/Province", Slot::kRegState, S::kState));
  e.push_back(RegField("Registrant Postal Code", Slot::kRegPostcode,
                       S::kPostcode));
  e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                       S::kCountry));
  e.push_back(RegField("Registrant Phone", Slot::kRegPhone, S::kPhone));
  e.push_back(RegField("Registrant Fax", Slot::kRegFax, S::kFax));
  e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
  if (with_admin_tech) {
    e.push_back(Field(L::kOther, "Admin Name", Slot::kAdminName));
    e.push_back(Field(L::kOther, "Admin Phone", Slot::kAdminPhone));
    e.push_back(Field(L::kOther, "Admin Email", Slot::kAdminEmail));
    e.push_back(Field(L::kOther, "Tech Name", Slot::kTechName));
    e.push_back(Field(L::kOther, "Tech Phone", Slot::kTechPhone));
    e.push_back(Field(L::kOther, "Tech Email", Slot::kTechEmail));
  }
  e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
  e.push_back(Field(L::kDomain, "DNSSEC", Slot::kDnssec));
  return e;
}

// Contextual block: a bare header line followed by untitled value lines —
// the hard case for rule-based parsing (§4.2's "field title appears alone
// with the following block representing the associated value").
std::vector<Element> ContactBlock(const std::string& header, bool indent,
                                  bool org_first, bool email_in_block) {
  std::vector<Element> e;
  e.push_back(Header(L::kRegistrant, header));
  auto add = [&](Slot slot, S sub) {
    Element f = RegField("", slot, sub);
    f.indent = indent;
    e.push_back(f);
  };
  if (org_first) add(Slot::kRegOrg, S::kOrg);
  add(Slot::kRegName, S::kName);
  if (!org_first) add(Slot::kRegOrg, S::kOrg);
  add(Slot::kRegStreet, S::kStreet);
  add(Slot::kRegCityStateZip, S::kCity);
  add(Slot::kRegCountryName, S::kCountry);
  add(Slot::kRegPhone, S::kPhone);
  if (email_in_block) add(Slot::kRegEmail, S::kEmail);
  return e;
}

std::vector<Element> OtherContactBlock(const std::string& header) {
  std::vector<Element> e;
  e.push_back(Header(L::kOther, header));
  auto add = [&](Slot slot) {
    Element f = Field(L::kOther, "", slot);
    f.indent = true;
    e.push_back(f);
  };
  add(Slot::kAdminName);
  add(Slot::kAdminPhone);
  add(Slot::kAdminEmail);
  return e;
}

void Append(std::vector<Element>& dst, std::vector<Element> src) {
  for (auto& e : src) dst.push_back(std::move(e));
}

std::string Boiler(size_t index) {
  const auto boilers = pools::Boilerplates();
  return std::string(boilers[index % boilers.size()]);
}

}  // namespace

// --- Drift ----------------------------------------------------------------

TemplateSpec DriftSpec(const TemplateSpec& v0) {
  TemplateSpec v1 = v0;
  v1.id = v0.id + "/drift";
  // Deterministic per family.
  uint64_t seed = 0xD41F7;
  for (char c : v0.id) seed = seed * 131 + static_cast<unsigned char>(c);
  util::Rng rng(seed);

  // 1. Rename up to three field titles to synonyms.
  int renames = 0;
  for (Element& e : v1.elements) {
    if (renames >= 3) break;
    if (e.kind != Element::Kind::kField || e.title.empty()) continue;
    const auto* syns = SynonymsForSlot(e.slot);
    if (syns == nullptr || syns->size() < 2) continue;
    if (!rng.Bernoulli(0.5)) continue;
    std::string replacement = (*syns)[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(syns->size()) - 1))];
    if (replacement != e.title) {
      e.title = std::move(replacement);
      ++renames;
    }
  }

  // 2. Swap one adjacent pair of registrant fields.
  for (size_t i = 0; i + 1 < v1.elements.size(); ++i) {
    Element& a = v1.elements[i];
    Element& b = v1.elements[i + 1];
    if (a.kind == Element::Kind::kField && b.kind == Element::Kind::kField &&
        a.label == L::kRegistrant && b.label == L::kRegistrant &&
        a.slot != Slot::kRegStreet && b.slot != Slot::kRegStreet) {
      std::swap(a, b);
      break;
    }
  }

  // 3. Insert a DNSSEC line if the family lacks one.
  bool has_dnssec = false;
  for (const Element& e : v1.elements) {
    if (e.slot == Slot::kDnssec) has_dnssec = true;
  }
  if (!has_dnssec) {
    v1.elements.push_back(Field(L::kDomain, "DNSSEC", Slot::kDnssec));
  }
  return v1;
}

// --- Synthesized tail families ---------------------------------------------

TemplateSpec SynthesizeSpec(const std::string& id, uint64_t seed) {
  util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 12345);
  TemplateSpec spec;
  spec.id = id;

  static const char* kSeparators[] = {": ", " : ", ":\t", ": ", ": "};
  spec.separator = kSeparators[rng.UniformInt(0, 4)];
  static const DateStyle kDates[] = {DateStyle::kIso, DateStyle::kIsoTime,
                                     DateStyle::kDMonY, DateStyle::kSlashes,
                                     DateStyle::kUsSlashes};
  spec.date_style = kDates[rng.UniformInt(0, 4)];
  spec.title_casing =
      rng.Bernoulli(0.2) ? Casing::kUpper
                         : (rng.Bernoulli(0.2) ? Casing::kLower : Casing::kAsIs);

  auto pick_title = [&](Slot slot) -> std::string {
    const auto* syns = SynonymsForSlot(slot);
    if (syns == nullptr) return {};
    return (*syns)[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(syns->size()) - 1))];
  };

  const bool block_style = rng.Bernoulli(0.35);
  const bool boiler_top = rng.Bernoulli(0.6);

  std::vector<Element>& e = spec.elements;
  if (boiler_top) {
    e.push_back(Boilerplate(Boiler(static_cast<size_t>(seed))));
    e.push_back(Blank());
  }

  e.push_back(Field(L::kDomain, pick_title(Slot::kDomainName),
                    Slot::kDomainName));
  e.push_back(Field(L::kRegistrar, pick_title(Slot::kRegistrarName),
                    Slot::kRegistrarName));
  if (rng.Bernoulli(0.5)) {
    e.push_back(Field(L::kRegistrar, pick_title(Slot::kWhoisServer),
                      Slot::kWhoisServer));
  }
  // Dates in a random order.
  std::vector<Slot> dates = {Slot::kCreated, Slot::kUpdated, Slot::kExpires};
  rng.Shuffle(dates);
  for (Slot d : dates) e.push_back(Field(L::kDate, pick_title(d), d));

  e.push_back(Blank());
  if (block_style) {
    static const char* kHeaders[] = {"Registrant:", "Owner:",
                                     "Registrant Contact:",
                                     "Holder of the domain:"};
    Append(e, ContactBlock(kHeaders[rng.UniformInt(0, 3)], rng.Bernoulli(0.7),
                           rng.Bernoulli(0.3), rng.Bernoulli(0.8)));
  } else {
    std::vector<std::pair<Slot, S>> fields = {
        {Slot::kRegName, S::kName},       {Slot::kRegOrg, S::kOrg},
        {Slot::kRegStreet, S::kStreet},   {Slot::kRegCity, S::kCity},
        {Slot::kRegState, S::kState},     {Slot::kRegPostcode, S::kPostcode},
        {Slot::kRegCountryCode, S::kCountry}, {Slot::kRegPhone, S::kPhone},
        {Slot::kRegEmail, S::kEmail},
    };
    // Keep name first; shuffle the middle lightly by one swap.
    if (rng.Bernoulli(0.5) && fields.size() > 4) {
      std::swap(fields[2], fields[3]);
    }
    for (auto& [slot, sub] : fields) {
      e.push_back(RegField(pick_title(slot), slot, sub));
    }
  }

  if (rng.Bernoulli(0.6)) {
    e.push_back(Blank());
    Append(e, OtherContactBlock(rng.Bernoulli(0.5) ? "Administrative Contact:"
                                                   : "Admin Contact:"));
  }

  e.push_back(Blank());
  e.push_back(Field(L::kDomain, pick_title(Slot::kNameServers),
                    Slot::kNameServers));
  if (rng.Bernoulli(0.5)) {
    e.push_back(Field(L::kDomain, pick_title(Slot::kStatuses),
                      Slot::kStatuses));
  }
  e.push_back(Blank());
  e.push_back(Boilerplate(Boiler(static_cast<size_t>(seed) + 3)));
  return spec;
}

// --- Named families ---------------------------------------------------------

void TemplateLibrary::AddFamily(const std::string& family, TemplateSpec v0) {
  v0.id = family + "/v0";
  TemplateSpec v1 = DriftSpec(v0);
  families_[family] = {std::move(v0), std::move(v1)};
}

void TemplateLibrary::BuildNamedFamilies() {
  // godaddy: ICANN flat, ISO times, leading boilerplate at bottom.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIsoTime;
    spec.elements = IcannFlat(/*with_ids=*/true, /*with_admin_tech=*/true);
    spec.elements.push_back(Blank());
    spec.elements.push_back(Boilerplate(Boiler(0)));
    AddFamily("godaddy", std::move(spec));
  }
  // wildwest: GoDaddy sibling — same shape, different header/boilerplate.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIsoTime;
    spec.elements.push_back(
        Boilerplate("Registration Service Provided By: Wild West Domains"));
    spec.elements.push_back(Blank());
    Append(spec.elements, IcannFlat(true, true));
    spec.elements.push_back(Blank());
    spec.elements.push_back(Boilerplate(Boiler(1)));
    AddFamily("wildwest", std::move(spec));
  }
  // enom: contextual blocks, minimal titles.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kDMonY;
    spec.indent = "   ";
    auto& e = spec.elements;
    e.push_back(Field(L::kRegistrar, "Registration Service Provided By",
                      Slot::kRegistrarName));
    e.push_back(Boilerplate(Boiler(3)));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "Domain name", Slot::kDomainName));
    e.push_back(Blank());
    Append(e, ContactBlock("Registrant Contact:", true, true, true));
    e.push_back(Blank());
    Append(e, OtherContactBlock("Administrative Contact:"));
    e.push_back(Blank());
    e.push_back(Literal(L::kDomain, "", "Name Servers:"));
    {
      Element ns = Field(L::kDomain, "", Slot::kNameServers);
      ns.indent = true;
      e.push_back(ns);
    }
    e.push_back(Blank());
    e.push_back(Field(L::kDate, "Creation date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expiration date", Slot::kExpires));
    AddFamily("enom", std::move(spec));
  }
  // netsol: upper-case contextual block, legacy look.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kDMonY;
    spec.indent = "    ";
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Blank());
    e.push_back(Header(L::kRegistrant, "Registrant:"));
    auto add_reg = [&](Slot slot, S sub) {
      Element f = RegField("", slot, sub);
      f.indent = true;
      e.push_back(f);
    };
    add_reg(Slot::kRegOrg, S::kOrg);
    add_reg(Slot::kRegName, S::kName);
    add_reg(Slot::kRegStreet, S::kStreet);
    add_reg(Slot::kRegCityStateZip, S::kCity);
    add_reg(Slot::kRegCountryCode, S::kCountry);
    e.push_back(Blank());
    e.push_back(Field(L::kDate, "Record created on", Slot::kCreated));
    e.push_back(Field(L::kDate, "Record expires on", Slot::kExpires));
    e.push_back(Field(L::kDate, "Record last updated on", Slot::kUpdated));
    e.push_back(Blank());
    e.push_back(Literal(L::kDomain, "", "Domain servers in listed order:"));
    Element ns = Field(L::kDomain, "", Slot::kNameServers);
    ns.indent = true;
    e.push_back(ns);
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(2)));
    AddFamily("netsol", std::move(spec));
  }
  // oneand1: tab-separated keys.
  {
    TemplateSpec spec;
    spec.separator = ":\t";
    spec.date_style = DateStyle::kIso;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kRegistrar, "Whois Server", Slot::kWhoisServer));
    e.push_back(Field(L::kDate, "Created", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expires", Slot::kExpires));
    e.push_back(Blank());
    e.push_back(RegField("Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Address", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Zip", Slot::kRegPostcode, S::kPostcode));
    e.push_back(RegField("Country", Slot::kRegCountryCode, S::kCountry));
    e.push_back(RegField("Phone", Slot::kRegPhone, S::kPhone));
    e.push_back(RegField("Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "Nameserver", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(4)));
    AddFamily("oneand1", std::move(spec));
  }
  // hichina.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registration Service Provider",
                      Slot::kRegistrarName));
    e.push_back(Field(L::kRegistrar, "Registration Service URL",
                      Slot::kRegistrarUrl));
    e.push_back(Field(L::kDomain, "Domain Status", Slot::kStatuses));
    e.push_back(RegField("Registrant ID", Slot::kRegId, S::kId));
    e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDate, "Registration Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expiration Date", Slot::kExpires));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    AddFamily("hichina", std::move(spec));
  }
  // xinnet.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIso;
    auto& e = spec.elements;
    e.push_back(Boilerplate(Boiler(5)));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "domain_name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "registrar_name", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "creation_date", Slot::kCreated));
    e.push_back(Field(L::kDate, "expiration_date", Slot::kExpires));
    e.push_back(RegField("registrant_id", Slot::kRegId, S::kId));
    e.push_back(RegField("registrant_name", Slot::kRegName, S::kName));
    e.push_back(RegField("registrant_organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("registrant_country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("registrant_email", Slot::kRegEmail, S::kEmail));
    e.push_back(RegField("registrant_phone", Slot::kRegPhone, S::kPhone));
    e.push_back(Field(L::kDomain, "name_server", Slot::kNameServers));
    AddFamily("xinnet", std::move(spec));
  }
  // pdr: ICANN flat without ids, different ordering.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Creation Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Updated Date", Slot::kUpdated));
    e.push_back(Field(L::kDate, "Registry Expiry Date", Slot::kExpires));
    e.push_back(Blank());
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Street", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant State/Province", Slot::kRegState,
                         S::kState));
    e.push_back(RegField("Registrant Postal Code", Slot::kRegPostcode,
                         S::kPostcode));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Phone", Slot::kRegPhone, S::kPhone));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Field(L::kDomain, "DNSSEC", Slot::kDnssec));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(0)));
    AddFamily("pdr", std::move(spec));
  }
  // register: dotted leaders.
  {
    TemplateSpec spec;
    spec.separator = "......: ";
    spec.date_style = DateStyle::kUsSlashes;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Created on", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expires on", Slot::kExpires));
    e.push_back(Blank());
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Org", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Address", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant State", Slot::kRegState, S::kState));
    e.push_back(RegField("Registrant Zip", Slot::kRegPostcode, S::kPostcode));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryName,
                         S::kCountry));
    e.push_back(RegField("Registrant Phone", Slot::kRegPhone, S::kPhone));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "DNS Servers", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(1)));
    AddFamily("register", std::move(spec));
  }
  // fastdomain: ICANN flat with SYM banner.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIso;
    auto& e = spec.elements;
    e.push_back(Boilerplate("% FastDomain Inc. WHOIS server\n"
                            "% Please see the terms of use below."));
    e.push_back(Blank());
    Append(e, IcannFlat(false, false));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(3)));
    AddFamily("fastdomain", std::move(spec));
  }
  // gmo: bracket headers (Japanese registrar style).
  {
    TemplateSpec spec;
    spec.separator = "] ";  // pairs with the "[Title" titles below
    spec.date_style = DateStyle::kSlashes;
    auto& e = spec.elements;
    auto bracket = [](L l1, const char* title, Slot slot,
                      std::optional<S> sub = std::nullopt) {
      Element f = Field(l1, std::string("[") + title, slot, sub);
      return f;
    };
    e.push_back(bracket(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(bracket(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(bracket(L::kDate, "Created on", Slot::kCreated));
    e.push_back(bracket(L::kDate, "Expires on", Slot::kExpires));
    e.push_back(bracket(L::kDate, "Last Updated", Slot::kUpdated));
    e.push_back(Blank());
    e.push_back(Header(L::kRegistrant, "[Registrant]"));
    e.push_back(bracket(L::kRegistrant, "Name", Slot::kRegName, S::kName));
    e.push_back(bracket(L::kRegistrant, "Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(bracket(L::kRegistrant, "Postal Address", Slot::kRegStreet,
                        S::kStreet));
    e.push_back(bracket(L::kRegistrant, "City", Slot::kRegCity, S::kCity));
    e.push_back(bracket(L::kRegistrant, "Postal code", Slot::kRegPostcode,
                        S::kPostcode));
    e.push_back(bracket(L::kRegistrant, "Country", Slot::kRegCountryName,
                        S::kCountry));
    e.push_back(bracket(L::kRegistrant, "Phone", Slot::kRegPhone, S::kPhone));
    e.push_back(bracket(L::kRegistrant, "Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Blank());
    e.push_back(bracket(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(5)));
    AddFamily("gmo", std::move(spec));
  }
  // melbourne.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kDMonY;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kDate, "Last Modified", Slot::kUpdated));
    e.push_back(Field(L::kDate, "Creation Date", Slot::kCreated));
    e.push_back(Field(L::kRegistrar, "Registrar Name", Slot::kRegistrarName));
    e.push_back(Field(L::kRegistrar, "Registrar Whois", Slot::kWhoisServer));
    e.push_back(Blank());
    e.push_back(RegField("Registrant", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Contact Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Address", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant Country", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(2)));
    AddFamily("melbourne", std::move(spec));
  }
  // tucows: block with leading single space.
  {
    TemplateSpec spec;
    spec.indent = " ";
    spec.date_style = DateStyle::kDMonY;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Blank());
    Append(e, ContactBlock("Registrant:", true, false, true));
    e.push_back(Blank());
    e.push_back(Field(L::kDate, "Record created on", Slot::kCreated));
    e.push_back(Field(L::kDate, "Record expires on", Slot::kExpires));
    e.push_back(Blank());
    e.push_back(Literal(L::kDomain, "", "Domain servers in listed order:"));
    Element ns = Field(L::kDomain, "", Slot::kNameServers);
    ns.indent = true;
    e.push_back(ns);
    AddFamily("tucows", std::move(spec));
  }
  // moniker / namecom / bizcn / dreamhost / namecheap / ovh / gandi reuse
  // builders with different knobs.
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIsoTime;
    spec.title_casing = Casing::kUpper;
    auto& e = spec.elements;
    Append(e, IcannFlat(false, false));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(4)));
    AddFamily("moniker", std::move(spec));
  }
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    Append(e, IcannFlat(true, false));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(5)));
    AddFamily("namecom", std::move(spec));
  }
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIso;
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Sponsoring Registrar",
                      Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "Registration Date", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expiration Date", Slot::kExpires));
    e.push_back(RegField("Registrant Name", Slot::kRegName, S::kName));
    e.push_back(RegField("Registrant Organization", Slot::kRegOrg, S::kOrg));
    e.push_back(RegField("Registrant Address", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("Registrant City", Slot::kRegCity, S::kCity));
    e.push_back(RegField("Registrant Country Code", Slot::kRegCountryCode,
                         S::kCountry));
    e.push_back(RegField("Registrant Email", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "Name Server", Slot::kNameServers));
    AddFamily("bizcn", std::move(spec));
  }
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIso;
    spec.indent = "  ";
    auto& e = spec.elements;
    e.push_back(Field(L::kDomain, "Domain Name", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "Registrar", Slot::kRegistrarName));
    e.push_back(Blank());
    Append(e, ContactBlock("Registrant Contact Information:", true, false,
                           true));
    e.push_back(Blank());
    e.push_back(Field(L::kDate, "Created", Slot::kCreated));
    e.push_back(Field(L::kDate, "Expires", Slot::kExpires));
    e.push_back(Field(L::kDomain, "Name Servers", Slot::kNameServers));
    AddFamily("dreamhost", std::move(spec));
  }
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kDMonY;
    auto& e = spec.elements;
    Append(e, IcannFlat(true, true));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(1)));
    AddFamily("namecheap", std::move(spec));
  }
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIso;
    spec.title_casing = Casing::kLower;
    auto& e = spec.elements;
    e.push_back(Boilerplate("%% OVH WHOIS server\n%% for more information, "
                            "visit http://www.ovh.com"));
    e.push_back(Blank());
    e.push_back(Field(L::kDomain, "domain", Slot::kDomainName));
    e.push_back(Field(L::kRegistrar, "registrar", Slot::kRegistrarName));
    e.push_back(Field(L::kDate, "created", Slot::kCreated));
    e.push_back(Field(L::kDate, "expires", Slot::kExpires));
    e.push_back(RegField("nic-hdl", Slot::kRegId, S::kId));
    e.push_back(RegField("owner", Slot::kRegName, S::kName));
    e.push_back(RegField("address", Slot::kRegStreet, S::kStreet));
    e.push_back(RegField("city", Slot::kRegCity, S::kCity));
    e.push_back(RegField("zipcode", Slot::kRegPostcode, S::kPostcode));
    e.push_back(RegField("country", Slot::kRegCountryCode, S::kCountry));
    e.push_back(RegField("e-mail", Slot::kRegEmail, S::kEmail));
    e.push_back(Field(L::kDomain, "nserver", Slot::kNameServers));
    AddFamily("ovh", std::move(spec));
  }
  {
    TemplateSpec spec;
    spec.date_style = DateStyle::kIsoTime;
    auto& e = spec.elements;
    Append(e, IcannFlat(true, false));
    e.push_back(Blank());
    e.push_back(Boilerplate(Boiler(0)));
    AddFamily("gandi", std::move(spec));
  }
}

void TemplateLibrary::BuildTailFamilies() {
  for (int i = 0; i < 30; ++i) {
    const std::string family = "tail/" + std::to_string(i);
    TemplateSpec v0 = SynthesizeSpec(family + "/v0",
                                     static_cast<uint64_t>(i) + 1000);
    TemplateSpec v1 = DriftSpec(v0);
    families_[family] = {std::move(v0), std::move(v1)};
  }
}

TemplateLibrary::TemplateLibrary() {
  BuildNamedFamilies();
  BuildTailFamilies();
  BuildNewTldTemplates();
}

const TemplateSpec& TemplateLibrary::Get(const std::string& family,
                                         int version) const {
  auto it = families_.find(family);
  if (it == families_.end()) {
    throw std::out_of_range("TemplateLibrary: unknown family " + family);
  }
  const auto& versions = it->second;
  const size_t v = std::min<size_t>(static_cast<size_t>(version),
                                    versions.size() - 1);
  return versions[v];
}

bool TemplateLibrary::Has(const std::string& family) const {
  return families_.count(family) > 0;
}

std::vector<std::string> TemplateLibrary::Families() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& [name, specs] : families_) out.push_back(name);
  return out;
}

const TemplateSpec& TemplateLibrary::NewTld(const std::string& tld) const {
  auto it = new_tlds_.find(tld);
  if (it == new_tlds_.end()) {
    throw std::out_of_range("TemplateLibrary: unknown TLD " + tld);
  }
  return it->second;
}

std::vector<std::string> TemplateLibrary::NewTldNames() {
  return {"aero", "asia", "biz",  "coop",   "info", "mobi",
          "name", "org",  "pro",  "travel", "us",   "xxx"};
}

}  // namespace whoiscrf::datagen
