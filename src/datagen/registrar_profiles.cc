#include "datagen/registrar_profiles.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace whoiscrf::datagen {

namespace {

RegistrarInfo Make(std::string short_name, std::string name,
                   std::string server, std::string url, std::string iana,
                   std::string family, double share_1998, double share_2014,
                   double privacy_mult, std::string privacy_service,
                   double dbl_factor,
                   std::vector<std::pair<std::string, double>> tilt = {}) {
  RegistrarInfo r;
  r.short_name = std::move(short_name);
  r.name = std::move(name);
  r.whois_server = std::move(server);
  r.url = std::move(url);
  r.iana_id = std::move(iana);
  r.family = std::move(family);
  r.share_1998 = share_1998;
  r.share_2014 = share_2014;
  r.privacy_mult = privacy_mult;
  r.privacy_service = std::move(privacy_service);
  r.dbl_factor = dbl_factor;
  r.country_tilt = std::move(tilt);
  return r;
}

// Stems for the synthesized long-tail registrars. Each gets a distinct
// generated template family ("tail/<n>"), modeling the hundreds of small
// registrars and resellers whose formats no template library keeps up with.
constexpr const char* kTailStems[] = {
    "NameFalcon",  "DomainHub",   "RegPoint",   "WebNames",   "DotServe",
    "NamePilot",   "ZoneRegistry", "DomainCove", "NameHarbor", "RegWorks",
    "DotVault",    "NameSpring",  "DomainForge", "RegNest",    "WebDomains",
    "NameOrbit",   "DotAnchor",   "DomainCrest", "RegBloom",   "NameQuarry",
    "DotMeadow",   "DomainRidge", "RegHaven",    "NameLedger", "DotPrairie",
    "DomainSummit", "RegCanyon",  "NameIsland",  "DotTundra",  "DomainGrove",
};

}  // namespace

RegistrarTable::RegistrarTable() {
  using P = std::pair<std::string, double>;
  // Named registrars (Table 5 shares; privacy multipliers from Table 6;
  // blacklist factors from Table 9; country tilts from Figure 5).
  registrars_ = {
      Make("GoDaddy", "GoDaddy.com, LLC", "whois.godaddy.com",
           "http://www.godaddy.com", "146", "godaddy", 0.320, 0.344, 1.00,
           "Domains By Proxy", 0.60),
      Make("eNom", "eNom, Inc.", "whois.enom.com", "http://www.enom.com",
           "48", "enom", 0.110, 0.077, 1.45,
           "Whois Privacy Protect|WhoisGuard", 3.30,
           {P{"CA", 0.10}, P{"GB", 0.09}}),
      Make("Network Solutions", "Network Solutions, LLC",
           "whois.networksolutions.com", "http://networksolutions.com", "2",
           "netsol", 0.120, 0.043, 0.50, "Perfect Privacy", 0.85),
      Make("1&1 Internet", "1&1 Internet AG", "whois.1and1.com",
           "http://1and1.com", "83", "oneand1", 0.040, 0.021, 0.93,
           "1&1 Internet", 0.40, {P{"DE", 0.45}}),
      Make("Wild West Domains", "Wild West Domains, LLC",
           "whois.wildwestdomains.com", "http://www.wildwestdomains.com",
           "440", "wildwest", 0.020, 0.024, 1.15, "Domains By Proxy", 0.55),
      Make("HiChina", "HiChina Zhicheng Technology Ltd.",
           "grs-whois.hichina.com", "http://www.net.cn", "420", "hichina",
           0.002, 0.037, 1.90, "Aliyun", 0.90,
           {P{"CN", 0.78}, P{"", 0.10}, P{"VN", 0.02}, P{"HK", 0.03}}),
      Make("Public Domain Reg.", "PDR Ltd. d/b/a PublicDomainRegistry.com",
           "whois.publicdomainregistry.com", "http://www.pdr-ltd.com", "303",
           "pdr", 0.004, 0.032, 1.60, "PrivacyProtect.org", 0.80,
           {P{"IN", 0.35}}),
      Make("Register.com", "Register.com, Inc.", "whois.register.com",
           "http://www.register.com", "9", "register", 0.060, 0.021, 1.20,
           "Perfect Privacy", 2.10),
      Make("FastDomain", "FastDomain Inc.", "whois.fastdomain.com",
           "http://www.fastdomain.com", "1154", "fastdomain", 0.010, 0.018,
           1.70, "Whois Privacy Protect", 0.50),
      Make("GMO Internet", "GMO Internet, Inc. d/b/a Onamae.com",
           "whois.discount-domain.com", "http://www.onamae.com", "49", "gmo",
           0.008, 0.030, 2.20, "MuuMuuDomain|FBO REGISTRANT", 6.80,
           {P{"JP", 0.75}, P{"US", 0.08}}),
      Make("Xinnet", "Xin Net Technology Corporation", "whois.paycenter.com.cn",
           "http://www.xinnet.com", "120", "xinnet", 0.001, 0.033, 0.80,
           "", 0.80, {P{"CN", 0.80}, P{"", 0.08}}),
      Make("Melbourne IT", "Melbourne IT Ltd", "whois.melbourneit.com",
           "http://www.melbourneit.com.au", "13", "melbourne", 0.030, 0.008,
           0.80, "FBO REGISTRANT", 0.70,
           {P{"US", 0.25}, P{"AU", 0.22}, P{"JP", 0.14}}),
      Make("Tucows", "Tucows Domains Inc.", "whois.tucows.com",
           "http://www.tucows.com", "69", "tucows", 0.035, 0.012, 0.90,
           "Contact Privacy", 0.60, {P{"CA", 0.15}}),
      Make("Moniker", "Moniker Online Services LLC", "whois.moniker.com",
           "http://www.moniker.com", "228", "moniker", 0.003, 0.004, 1.20,
           "Moniker Privacy Services", 10.0),
      Make("Name.com", "Name.com, Inc.", "whois.name.com",
           "http://www.name.com", "625", "namecom", 0.002, 0.007, 1.10,
           "Whois Agent", 3.00),
      Make("Bizcn.com", "Bizcn.com, Inc.", "whois.bizcn.com",
           "http://www.bizcn.com", "471", "bizcn", 0.001, 0.005, 0.80, "",
           4.50, {P{"CN", 0.80}}),
      Make("DreamHost", "DreamHost, LLC", "whois.dreamhost.com",
           "http://www.dreamhost.com", "431", "dreamhost", 0.003, 0.005,
           5.60, "Happy DreamHost", 0.50),
      Make("Namecheap", "NameCheap, Inc.", "whois.namecheap.com",
           "http://www.namecheap.com", "1068", "namecheap", 0.002, 0.014,
           2.50, "WhoisGuard", 1.20),
      Make("OVH", "OVH sas", "whois.ovh.com", "http://www.ovh.com", "433",
           "ovh", 0.002, 0.006, 0.80, "", 0.60, {P{"FR", 0.60}}),
      Make("Gandi", "Gandi SAS", "whois.gandi.net", "http://www.gandi.net",
           "81", "gandi", 0.004, 0.005, 0.90, "", 0.50, {P{"FR", 0.50}}),
  };

  // Synthesized long tail. Shares follow a Zipf profile over the residual
  // mass (roughly 28% all-time / 26% in 2014 after the named registrars).
  double named_1998 = 0.0;
  double named_2014 = 0.0;
  for (const auto& r : registrars_) {
    named_1998 += r.share_1998;
    named_2014 += r.share_2014;
  }
  const double tail_1998 = std::max(0.0, 1.0 - named_1998);
  const double tail_2014 = std::max(0.0, 1.0 - named_2014);
  const size_t tail_count = std::size(kTailStems);
  double zipf_total = 0.0;
  for (size_t i = 0; i < tail_count; ++i) {
    zipf_total += 1.0 / std::pow(static_cast<double>(i + 1), 0.3);
  }
  for (size_t i = 0; i < tail_count; ++i) {
    const double z =
        (1.0 / std::pow(static_cast<double>(i + 1), 0.3)) / zipf_total;
    const std::string stem = kTailStems[i];
    const std::string lower = util::ToLower(stem);
    RegistrarInfo r = Make(
        stem, stem + " LLC", "whois." + lower + ".com",
        "http://www." + lower + ".com", std::to_string(1500 + i),
        "tail/" + std::to_string(i), tail_1998 * z, tail_2014 * z,
        (i % 4 == 0) ? 1.6 : 0.8, "", (i % 7 == 0) ? 2.0 : 0.6);
    registrars_.push_back(std::move(r));
  }
}

int RegistrarTable::IndexOf(std::string_view short_name) const {
  for (size_t i = 0; i < registrars_.size(); ++i) {
    if (registrars_[i].short_name == short_name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> RegistrarTable::WeightsForYear(int year) const {
  const double t =
      std::clamp((static_cast<double>(year) - 1998.0) / (2014.0 - 1998.0),
                 0.0, 1.0);
  std::vector<double> weights;
  weights.reserve(registrars_.size());
  for (const auto& r : registrars_) {
    weights.push_back(r.share_1998 + t * (r.share_2014 - r.share_1998));
  }
  return weights;
}

size_t RegistrarTable::Sample(util::Rng& rng, int year) const {
  return rng.WeightedIndex(WeightsForYear(year));
}

}  // namespace whoiscrf::datagen
