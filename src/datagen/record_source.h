// GeneratedRecordSource: a whois::RecordSource over any deterministic
// index -> record function — the bridge that lets the streaming parse
// pipeline consume a synthetic corpus without ever materializing it.
// Records are rendered one at a time on the reader thread; memory stays
// O(1 record) at any corpus size, and because generation is a pure
// function of the index, Skip is a cursor move: resuming a checkpointed
// 100M-record scale run costs nothing.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "whois/record_stream.h"

namespace whoiscrf::datagen {

class GeneratedRecordSource : public whois::RecordSource {
 public:
  // `generate` must be deterministic in the index (e.g.
  // TemporalCorpusGenerator::Generate), or resumed runs would diverge
  // from uninterrupted ones.
  GeneratedRecordSource(uint64_t count,
                        std::function<std::string(uint64_t index)> generate)
      : count_(count), generate_(std::move(generate)) {}

  bool Next(std::string& record) override {
    if (pos_ >= count_) return false;
    const auto start = std::chrono::steady_clock::now();
    record = generate_(pos_++);
    generate_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return true;
  }

  uint64_t Skip(uint64_t n) override {
    const uint64_t skip = std::min(n, count_ - pos_);
    pos_ += skip;
    return skip;
  }

  // Wall time spent inside `generate` so far (reader-thread time; the
  // scale bench reports it as the generation share of the run).
  double generate_seconds() const { return generate_seconds_; }
  uint64_t position() const { return pos_; }

 private:
  uint64_t count_;
  std::function<std::string(uint64_t)> generate_;
  uint64_t pos_ = 0;
  double generate_seconds_ = 0.0;
};

}  // namespace whoiscrf::datagen
