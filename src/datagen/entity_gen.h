// Registrant/contact entity generation: plausible people and organizations
// with country-appropriate names, addresses, phones, and emails; privacy-
// service contacts for protected registrations (§6.3); and brand-company
// contacts (Table 4).
#pragma once

#include <string>

#include "datagen/facts.h"
#include "util/random.h"

namespace whoiscrf::datagen {

class EntityGenerator {
 public:
  // Generates a contact in the given country ("" = unknown: country fields
  // left empty, everything else generic). `org_probability` controls how
  // often the contact carries an organization.
  ContactFacts MakeContact(util::Rng& rng, std::string_view country_code,
                           double org_probability = 0.45) const;

  // The proxy contact a privacy service substitutes for the registrant:
  // service name in the name/org fields, service mail-forwarding email.
  ContactFacts MakePrivacyContact(util::Rng& rng,
                                  std::string_view service_name,
                                  std::string_view domain) const;

  // A brand company's registrant contact (e.g. "Amazon Technologies, Inc.").
  ContactFacts MakeBrandContact(util::Rng& rng,
                                std::string_view company) const;

  // A synthetic domain name (without TLD), e.g. "bluewavetech42".
  std::string MakeDomainLabel(util::Rng& rng) const;

  // Phone number in the country's conventional formatting.
  std::string MakePhone(util::Rng& rng, std::string_view country_code) const;
};

}  // namespace whoiscrf::datagen
