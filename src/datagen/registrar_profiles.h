// The registrar population (paper Tables 5, 6, 9; Figure 5).
//
// Named registrars carry the paper's reported market shares (all-time and
// 2014 columns of Table 5, interpolated per creation year), per-registrar
// privacy-service propensities (Table 6), blacklist propensities (Table 9),
// and registrant-country tilts (Figure 5). A synthesized long tail of
// smaller registrars — each with its own generated WHOIS format — models
// com's famous between-registrar schema diversity (§2.2).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/random.h"

namespace whoiscrf::datagen {

struct RegistrarInfo {
  std::string name;          // display name, e.g. "GoDaddy.com, LLC"
  std::string short_name;    // survey key, e.g. "GoDaddy"
  std::string whois_server;  // e.g. "whois.godaddy.com"
  std::string url;
  std::string iana_id;
  std::string family;        // template family id (see TemplateLibrary)
  double share_1998 = 0.0;   // market share of registrations created ~1998
  double share_2014 = 0.0;   // market share of registrations created 2014
  double privacy_mult = 1.0; // multiplier on the per-year base privacy rate
  std::string privacy_service;  // dominant privacy service; empty = generic
  double dbl_factor = 1.0;   // relative blacklist propensity (Table 9)
  // Registrant-country tilt: with probability sum(weights), draw from this
  // list; otherwise from the global per-year country mix (Figure 5).
  std::vector<std::pair<std::string, double>> country_tilt;
};

class RegistrarTable {
 public:
  RegistrarTable();

  size_t size() const { return registrars_.size(); }
  const RegistrarInfo& info(size_t index) const { return registrars_[index]; }

  // Index by short name, or -1.
  int IndexOf(std::string_view short_name) const;

  // Market-share weights for registrations created in `year`.
  std::vector<double> WeightsForYear(int year) const;

  // Draws the sponsoring registrar for a registration created in `year`.
  size_t Sample(util::Rng& rng, int year) const;

 private:
  std::vector<RegistrarInfo> registrars_;
};

}  // namespace whoiscrf::datagen
