#include "datagen/temporal.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "util/random.h"

namespace whoiscrf::datagen {

namespace {

CorpusOptions BaseOptions(const TemporalCorpusOptions& options) {
  CorpusOptions base;
  base.size = options.size;
  base.seed = options.seed;
  base.drift_fraction = 0.0;  // v0 everywhere; drift is temporal, not mixed
  return base;
}

// Families ranked by estimated 2014 traffic share — the ones whose drift
// actually moves aggregate accuracy. Ties broken by name for determinism.
std::vector<std::string> FamiliesByVolume(const RegistrarTable& registrars) {
  std::map<std::string, double> weight_by_family;
  for (size_t r = 0; r < registrars.size(); ++r) {
    const RegistrarInfo& info = registrars.info(r);
    weight_by_family[info.family] += info.share_2014;
  }
  std::vector<std::pair<std::string, double>> ranked(weight_by_family.begin(),
                                                     weight_by_family.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& [family, weight] : ranked) out.push_back(family);
  return out;
}

// Rewrites field titles to era-specific wordings the pre-drift corpus
// never uses — the "registrar modified their schema significantly"
// scenario (§2.3) at full severity: SynthesizeSpec alone draws titles
// from the same synonym pools the training corpus covers, which a CRF
// generalizes over, so resynthesis without novel vocabulary barely moves
// accuracy. The replacements keep the ExtractFields routing keywords
// (domain/provider/whois/creat/updat/expir/server/status) so ground
// truth stays exactly extractable; only the model has never seen them.
void NovelizeTitles(TemplateSpec& spec, size_t era) {
  const size_t v = era % 2;
  const auto title = [&](const char* a, const char* b) {
    return std::string(v == 0 ? a : b);
  };
  for (Element& e : spec.elements) {
    if (e.kind != Element::Kind::kField) continue;
    switch (e.slot) {
      case Slot::kDomainName:
        e.title = title("Queried Domain Object", "Domain Identification");
        break;
      case Slot::kRegistrarName:
        e.title = title("Registration Service Provider",
                        "Accredited Provider");
        break;
      case Slot::kWhoisServer:
        e.title = title("WHOIS Service Endpoint",
                        "Authoritative WHOIS Host");
        break;
      case Slot::kCreated:
        e.title = title("Object Created On", "Creation Timestamp");
        break;
      case Slot::kUpdated:
        e.title = title("Record Last Updated On", "Update Timestamp");
        break;
      case Slot::kExpires:
        e.title = title("Validity Expires On", "Expiry Timestamp");
        break;
      case Slot::kNameServers:
        e.title = title("Delegated Name Server", "Zone Server");
        break;
      case Slot::kStatuses:
        e.title = title("Lifecycle Status Flag", "Object Status Code");
        break;
      case Slot::kRegName:
        e.title = title("Holder Name", "Titulaire");
        break;
      case Slot::kRegOrg:
        e.title = title("Holder Organisation", "Titulaire Organisation");
        break;
      case Slot::kRegStreet:
        e.title = title("Holder Street Address", "Titulaire Voie");
        break;
      case Slot::kRegCity:
        e.title = title("Holder Locality", "Titulaire Localite");
        break;
      case Slot::kRegState:
        e.title = title("Holder Region", "Titulaire Region");
        break;
      case Slot::kRegPostcode:
        e.title = title("Holder Postal Reference", "Titulaire Code Postal");
        break;
      case Slot::kRegCountryCode:
        e.title = title("Holder Jurisdiction", "Titulaire Pays");
        break;
      case Slot::kRegPhone:
        e.title = title("Holder Telephone", "Titulaire Telephone");
        break;
      case Slot::kRegEmail:
        e.title = title("Holder Electronic Mail", "Titulaire Courriel");
        break;
      default:
        break;
    }
  }

  // Decoy notice lines: shaped exactly like fields (title, separator, a
  // company-name or date value) but carrying no data — the classic WHOIS
  // trap of reseller plugs and renewal reminders that sit right next to
  // the real fields. A model trained pre-drift labels them as registrar /
  // date lines (the value shape and title words all point that way) and
  // AssignFirst then steals the key field from the real line below; a
  // model retrained on harvested post-drift records learns their context
  // and labels them null. Ground truth is exact either way.
  Element provider_decoy =
      Field(whois::Level1Label::kNull,
            title("Sponsoring Provider Notice", "Registrar Partner Notice"),
            Slot::kLiteral);
  provider_decoy.literal = title("DomainPort Registration Services, Inc.",
                                 "NetHarbor Registry Solutions Ltd.");
  Element renewal_decoy = Field(
      whois::Level1Label::kNull,
      title("Renewal Notice", "Renewal Reminder"), Slot::kLiteral);
  renewal_decoy.literal = title("2016-04-01", "2016-10-01");
  auto it = spec.elements.begin();
  while (it != spec.elements.end() &&
         (it->kind == Element::Kind::kBoilerplate ||
          it->kind == Element::Kind::kBlank)) {
    ++it;
  }
  it = spec.elements.insert(it, renewal_decoy);
  spec.elements.insert(it, provider_decoy);
}

}  // namespace

TemporalCorpusGenerator::TemporalCorpusGenerator(
    TemporalCorpusOptions options)
    : options_(options), base_(BaseOptions(options)) {
  const std::vector<std::string> by_volume =
      FamiliesByVolume(base_.registrars());
  const size_t n_events = options_.events;

  // Seed every family's epoch-0 spec with the library v0, then evolve.
  auto specs_at = [&](const std::string& family) -> std::vector<TemplateSpec>& {
    auto it = epoch_specs_.find(family);
    if (it == epoch_specs_.end()) {
      std::vector<TemplateSpec> chain;
      chain.reserve(n_events + 1);
      chain.push_back(base_.templates().Get(family, 0));
      it = epoch_specs_.emplace(family, std::move(chain)).first;
    }
    return it->second;
  };

  for (size_t k = 0; k < n_events; ++k) {
    DriftEvent event;
    event.at_index = options_.size * (k + 1) / (n_events + 1);
    event.kind = (k % 2 == 0) ? DriftEvent::Kind::kResynthesis
                              : DriftEvent::Kind::kMutation;

    // The top families drift at every event: the biggest registrars are
    // exactly the ones the paper observed changing schemas, and repeated
    // drift of high-volume families keeps the no-loop baseline degrading.
    const size_t n_families =
        std::min(options_.families_per_event, by_volume.size());
    for (size_t f = 0; f < n_families; ++f) {
      const std::string& family = by_volume[f];
      std::vector<TemplateSpec>& chain = specs_at(family);
      while (chain.size() < k + 1) chain.push_back(chain.back());
      if (event.kind == DriftEvent::Kind::kResynthesis) {
        TemplateSpec spec = SynthesizeSpec(
            family + "/era" + std::to_string(k + 1),
            options_.seed ^ (0xE7A0000 + k * 131 +
                             std::hash<std::string>{}(family)));
        NovelizeTitles(spec, k + 1);
        chain.push_back(std::move(spec));
      } else {
        chain.push_back(DriftSpec(chain.back()));
      }
      event.families.push_back(family);
    }

    // A brand-new registrar appears with a schema nobody has seen.
    NewRegistrar reg;
    const std::string tag = std::to_string(k + 1);
    reg.name = "NewEra Domains " + tag + " LLC";
    reg.url = "http://www.newera" + tag + "domains.com";
    reg.whois_server = "whois.newera" + tag + "domains.com";
    reg.iana_id = std::to_string(9000 + k);
    reg.spec = SynthesizeSpec("newera" + tag + "/v0",
                              options_.seed ^ (0xBEEF00 + k * 977));
    NovelizeTitles(reg.spec, k + 1);
    event.new_registrar = reg.name;
    new_registrars_.push_back(std::move(reg));

    events_.push_back(std::move(event));
  }

  // Pad every drifted family's chain to events+1 epochs.
  for (auto& [family, chain] : epoch_specs_) {
    while (chain.size() < n_events + 1) chain.push_back(chain.back());
  }
}

size_t TemporalCorpusGenerator::EpochOf(size_t index) const {
  size_t epoch = 0;
  for (const DriftEvent& event : events_) {
    if (index >= event.at_index) ++epoch;
  }
  return epoch;
}

const TemplateSpec& TemporalCorpusGenerator::SpecFor(
    const std::string& family, size_t epoch) const {
  const auto it = epoch_specs_.find(family);
  if (it == epoch_specs_.end()) return base_.templates().Get(family, 0);
  return it->second[std::min(epoch, it->second.size() - 1)];
}

GeneratedDomain TemporalCorpusGenerator::Generate(size_t index) const {
  GeneratedDomain out = base_.Generate(index);
  const size_t epoch = EpochOf(index);
  if (epoch == 0) return out;  // pre-drift era: the plain v0 corpus

  // Routing and rendering decisions get their own stream so they never
  // perturb the base corpus's facts.
  util::Rng rng(options_.seed * 0x2545F4914F6CDD1DULL + index * 40503 + 7);

  // New registrars active at this epoch split new_registrar_share of the
  // traffic evenly.
  if (options_.new_registrar_share > 0.0 &&
      rng.Bernoulli(options_.new_registrar_share)) {
    const NewRegistrar& reg = new_registrars_[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(epoch) - 1))];
    out.facts.registrar_index = -1;
    out.facts.registrar_name = reg.name;
    out.facts.registrar_url = reg.url;
    out.facts.whois_server = reg.whois_server;
    out.facts.iana_id = reg.iana_id;
    out.template_id = reg.spec.id;
    out.thick = engine_.Render(reg.spec, out.facts);
    return out;
  }

  const std::string& family =
      base_.registrars()
          .info(static_cast<size_t>(out.facts.registrar_index))
          .family;
  const auto it = epoch_specs_.find(family);
  if (it == epoch_specs_.end()) return out;  // family never drifts
  const TemplateSpec& spec =
      it->second[std::min(epoch, it->second.size() - 1)];
  if (spec.id == out.template_id) return out;  // still the v0 schema
  out.template_id = spec.id;
  out.thick = engine_.Render(spec, out.facts);
  return out;
}

}  // namespace whoiscrf::datagen
