// TemporalCorpusGenerator: the time-ordered drifting corpus behind the
// self-healing lifecycle (docs/lifecycle.md). The paper's core robustness
// claim is that registrar formats change out from under parsers ("one
// large registrar modif[ied] their schema significantly during the four
// months of WHOIS measurements", §2.3); this generator turns that into a
// reproducible scenario: record index IS time, and at deterministic
// event indices the highest-volume template families mutate
// (DriftSpec chains: title renames, field reorders, DNSSEC inserts),
// re-synthesize their whole schema (SynthesizeSpec: the severe version of
// drift), or a brand-new registrar appears and starts taking traffic.
//
// Ground truth stays exact through every event because records are always
// produced by TemplateEngine::Render against the era's spec. Everything is
// deterministic in (options, index): Generate can be called in any order,
// in parallel, or re-called after a crash and yields identical bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "datagen/corpus_gen.h"

namespace whoiscrf::datagen {

// One schema-change event. Everything from `at_index` onward renders with
// the post-event schemas (earlier indices are untouched — time moves
// forward only).
struct DriftEvent {
  enum class Kind {
    kMutation,     // DriftSpec chain: renames/reorders/inserted lines
    kResynthesis,  // whole-schema re-roll; breaks stale parsers hard
  };
  size_t at_index = 0;
  Kind kind = Kind::kMutation;
  // Template families whose schema changed at this event.
  std::vector<std::string> families;
  // Display name of the registrar introduced at this event; empty when
  // the event adds no registrar.
  std::string new_registrar;
};

struct TemporalCorpusOptions {
  size_t size = 10000;
  uint64_t seed = 42;
  // Schema-change events, evenly spaced: event k lands at
  // size * (k + 1) / (events + 1).
  size_t events = 2;
  // Families mutated per event, picked from the highest-volume families
  // (volume estimated from 2014 market shares) so drift is guaranteed to
  // be visible in aggregate accuracy, not buried in the tail.
  size_t families_per_event = 3;
  // Events alternate kResynthesis (even) / kMutation (odd); resynthesis
  // first because the acceptance gate needs the no-loop baseline to
  // degrade measurably.
  // Each event also introduces one brand-new registrar; after k events
  // the new registrars jointly take this share of traffic (split evenly).
  double new_registrar_share = 0.15;
};

class TemporalCorpusGenerator {
 public:
  explicit TemporalCorpusGenerator(TemporalCorpusOptions options = {});

  // The record at time step `index`, rendered with the schemas in force
  // at that index. Deterministic; thread-safe.
  GeneratedDomain Generate(size_t index) const;

  // Number of events at or before `index` (0 = pre-drift era).
  size_t EpochOf(size_t index) const;

  const std::vector<DriftEvent>& events() const { return events_; }
  const TemporalCorpusOptions& options() const { return options_; }

  // The underlying pre-drift generator: registrar table, corpus options.
  // The survey layer folds parsed registrar names against this table.
  const CorpusGenerator& base() const { return base_; }

  // The era-`epoch` spec of `family` (the v0 library spec when the family
  // is never drifted). Exposed for tests asserting schema evolution.
  const TemplateSpec& SpecFor(const std::string& family,
                              size_t epoch) const;

 private:
  struct NewRegistrar {
    std::string name;
    std::string url;
    std::string whois_server;
    std::string iana_id;
    TemplateSpec spec;
  };

  TemporalCorpusOptions options_;
  CorpusGenerator base_;  // drift_fraction pinned to 0: v0 is the baseline
  TemplateEngine engine_;
  std::vector<DriftEvent> events_;
  // family -> per-epoch specs (size events+1); only drifted families
  // appear here.
  std::map<std::string, std::vector<TemplateSpec>> epoch_specs_;
  // One per event, active from its event's index onward.
  std::vector<NewRegistrar> new_registrars_;
};

}  // namespace whoiscrf::datagen
