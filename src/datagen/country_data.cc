#include "datagen/country_data.h"

#include <algorithm>
#include <array>

namespace whoiscrf::datagen {

namespace {

// share_1998 values are chosen so that, weighted by the creation-year
// volume curve (Figure 4a), the corpus-wide mix lands near Table 3's
// all-time column; share_2014 comes straight from Table 3's right column.
// dbl_factor reflects Table 8 (relative propensity to appear on the DBL),
// applied multiplicatively with the per-registrar abuse factors.
constexpr std::array<CountryProfile, 44> kCountries = {{
    {"US", "United States", 0.650, 0.411, 1.00},
    {"CN", "China", 0.005, 0.182, 1.00},
    {"GB", "United Kingdom", 0.060, 0.035, 0.40},
    {"DE", "Germany", 0.055, 0.019, 0.30},
    {"FR", "France", 0.040, 0.029, 0.55},
    {"CA", "Canada", 0.040, 0.025, 0.55},
    {"ES", "Spain", 0.026, 0.017, 0.30},
    {"AU", "Australia", 0.025, 0.013, 0.40},
    {"JP", "Japan", 0.014, 0.021, 5.00},
    {"IN", "India", 0.004, 0.025, 0.45},
    {"TR", "Turkey", 0.003, 0.017, 0.50},
    {"VN", "Vietnam", 0.001, 0.008, 6.00},
    {"RU", "Russia", 0.003, 0.008, 1.60},
    {"NL", "Netherlands", 0.010, 0.007, 0.40},
    {"IT", "Italy", 0.009, 0.007, 0.40},
    {"BR", "Brazil", 0.004, 0.009, 0.80},
    {"KR", "South Korea", 0.006, 0.006, 0.80},
    {"SE", "Sweden", 0.006, 0.004, 0.30},
    {"CH", "Switzerland", 0.005, 0.004, 0.30},
    {"PL", "Poland", 0.003, 0.005, 0.50},
    {"MX", "Mexico", 0.003, 0.005, 0.60},
    {"ZA", "South Africa", 0.002, 0.004, 0.60},
    {"HK", "Hong Kong", 0.004, 0.010, 1.20},
    // Long tail of smaller markets; individually below the top-10 cut, they
    // make up Table 3's "(Other)" row (17.5% all-time / 18.9% in 2014).
    {"NO", "Norway", 0.005, 0.004, 0.30},
    {"DK", "Denmark", 0.005, 0.004, 0.30},
    {"BE", "Belgium", 0.005, 0.004, 0.35},
    {"AT", "Austria", 0.004, 0.003, 0.30},
    {"GR", "Greece", 0.003, 0.004, 0.50},
    {"PT", "Portugal", 0.003, 0.003, 0.40},
    {"CZ", "Czech Republic", 0.003, 0.004, 0.50},
    {"ID", "Indonesia", 0.002, 0.009, 1.20},
    {"TH", "Thailand", 0.002, 0.006, 1.00},
    {"MY", "Malaysia", 0.002, 0.005, 0.90},
    {"PH", "Philippines", 0.002, 0.006, 0.90},
    {"AR", "Argentina", 0.003, 0.005, 0.70},
    {"CL", "Chile", 0.002, 0.003, 0.50},
    {"CO", "Colombia", 0.002, 0.004, 0.70},
    {"UA", "Ukraine", 0.002, 0.005, 1.30},
    {"IL", "Israel", 0.003, 0.004, 0.60},
    {"AE", "United Arab Emirates", 0.002, 0.005, 0.80},
    {"SA", "Saudi Arabia", 0.001, 0.004, 0.80},
    {"EG", "Egypt", 0.001, 0.004, 0.90},
    {"NG", "Nigeria", 0.001, 0.004, 1.50},
    // Records with no usable country information ("Unknown" in Table 3).
    {"", "", 0.042, 0.029, 0.85},
}};

}  // namespace

std::span<const CountryProfile> Countries() { return kCountries; }

int CountryIndex(std::string_view code) {
  for (size_t i = 0; i < kCountries.size(); ++i) {
    if (kCountries[i].code == code) return static_cast<int>(i);
  }
  return -1;
}

std::vector<double> CountryWeightsForYear(int year) {
  const double t =
      std::clamp((static_cast<double>(year) - 1998.0) / (2014.0 - 1998.0),
                 0.0, 1.0);
  std::vector<double> weights;
  weights.reserve(kCountries.size());
  for (const CountryProfile& c : kCountries) {
    // Rising countries (notably China) grew late and superlinearly; a
    // quadratic ramp reproduces the paper's gap between the all-time and
    // 2014 columns of Table 3. Declining shares recede roughly linearly.
    const double ramp =
        c.share_2014 > c.share_1998 ? t * t : t;
    weights.push_back(c.share_1998 + ramp * (c.share_2014 - c.share_1998));
  }
  return weights;
}

int SampleCountry(util::Rng& rng, int year) {
  const auto weights = CountryWeightsForYear(year);
  return static_cast<int>(rng.WeightedIndex(weights));
}

std::string_view CountryDisplayName(std::string_view code) {
  const int idx = CountryIndex(code);
  return idx < 0 ? std::string_view{} : kCountries[static_cast<size_t>(idx)].name;
}

}  // namespace whoiscrf::datagen
