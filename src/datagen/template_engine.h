// Renders a TemplateSpec against DomainFacts into a LabeledRecord.
#pragma once

#include <string>

#include "datagen/facts.h"
#include "datagen/template_spec.h"
#include "whois/record.h"

namespace whoiscrf::datagen {

class TemplateEngine {
 public:
  // Renders the thick record for `facts` in the given format. The returned
  // record's labels are ground truth by construction (Validate() holds).
  whois::LabeledRecord Render(const TemplateSpec& spec,
                              const DomainFacts& facts) const;

  // Renders a Verisign-style *thin* registry record for `facts`
  // (registrar, WHOIS server referral, dates, name servers — no
  // registrant), as returned by the com registry before the second query
  // hop (§2.2).
  whois::LabeledRecord RenderThin(const DomainFacts& facts) const;

  // Formats an ISO date (YYYY-MM-DD or YYYY-MM-DDTHH:MM:SSZ) in the given
  // style. Falls back to the input when it cannot be parsed.
  static std::string FormatDate(const std::string& iso, DateStyle style);
};

}  // namespace whoiscrf::datagen
