// TemplateLibrary: the population of WHOIS record formats.
//
// * One format family per named registrar (GoDaddy's ICANN-style flat
//   key-value records, eNom's contextual blocks, Network Solutions'
//   upper-case blocks, GMO's [bracket] style, Register.com's dotted
//   leaders, ...), each in two versions: v0 (original) and v1 (drifted —
//   the paper observed "one large registrar modifying their schema
//   significantly during the four months of WHOIS measurements").
// * Synthesized families ("tail/<n>") for the long tail of small
//   registrars: schema generated deterministically from the family seed by
//   drawing title synonyms, separators, casings, and field order.
// * Twelve single-registry templates for the new-TLD generalization
//   experiment (Table 2): aero asia biz coop info mobi name org pro travel
//   us xxx.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "datagen/template_spec.h"

namespace whoiscrf::datagen {

class TemplateLibrary {
 public:
  TemplateLibrary();

  // Format of `family` at schema version 0 (original) or 1 (drifted).
  // Unknown families throw std::out_of_range.
  const TemplateSpec& Get(const std::string& family, int version) const;

  bool Has(const std::string& family) const;
  std::vector<std::string> Families() const;

  // New-TLD registry templates (Table 2): tld in {"aero", "asia", ...}.
  const TemplateSpec& NewTld(const std::string& tld) const;
  static std::vector<std::string> NewTldNames();

 private:
  void AddFamily(const std::string& family, TemplateSpec v0);
  void BuildNamedFamilies();
  void BuildTailFamilies();
  void BuildNewTldTemplates();

  std::map<std::string, std::vector<TemplateSpec>> families_;
  std::map<std::string, TemplateSpec> new_tlds_;
};

// Derives the drifted (v1) variant of a spec: renames a couple of field
// titles to synonyms, reorders two adjacent registrant fields, and inserts
// a DNSSEC line — the kinds of minor changes that break template parsers
// (§2.3). Deterministic per spec id.
TemplateSpec DriftSpec(const TemplateSpec& v0);

// Synthesizes a complete format family from a seed (for tail registrars).
TemplateSpec SynthesizeSpec(const std::string& id, uint64_t seed);

}  // namespace whoiscrf::datagen
