// CorpusGenerator: assembles the full synthetic .com WHOIS corpus — the
// substitute for the paper's 102M-record crawl (§4).
//
// Every generated domain is deterministic in (seed, index): the registrar
// is drawn from the per-year market-share model (Table 5), the registrant
// country from the per-year country model (Table 3 / Figure 4b), privacy
// protection from the per-year adoption curve with per-registrar
// propensities (Tables 6-7), blacklisting from registrar x country abuse
// factors (Tables 8-9), and the record text from the registrar's template
// family at schema version v0 or v1 (drift).
#pragma once

#include <string>
#include <vector>

#include "datagen/entity_gen.h"
#include "datagen/facts.h"
#include "datagen/registrar_profiles.h"
#include "datagen/template_engine.h"
#include "datagen/template_library.h"
#include "whois/record.h"

namespace whoiscrf::datagen {

struct GeneratedDomain {
  DomainFacts facts;
  whois::LabeledRecord thick;
  std::string template_id;  // e.g. "enom/v0"
};

struct CorpusOptions {
  size_t size = 10000;
  uint64_t seed = 42;
  // Fraction of records rendered with the *drifted* (v1) schema version —
  // the format changes that break template/rule parsers over time (§2.3).
  double drift_fraction = 0.25;
  int min_year = 1986;
  int max_year = 2014;
  // Multiplier on blacklist propensity; the real-world DBL base rate is so
  // low that small corpora need a boost for statistically stable tables.
  double dbl_boost = 10.0;
  // Multiplier on brand/bulk-holder ownership probability (Table 4's brand
  // counts are ~0.1% of 102M; simulation-scale corpora need a boost for the
  // ranking to stabilize). Relative weights between brands are unchanged.
  double brand_boost = 1.0;
  // Fraction of records receiving label-preserving "crawl grime": inserted
  // blank lines, case-mangled titles, typos in title words, and dropped
  // field lines. Real WHOIS responses carry all of these; raising this
  // moves error rates toward the paper's absolute numbers.
  double noise_fraction = 0.0;
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusOptions options = {});

  // The i-th domain of the corpus. Deterministic; can be called in any
  // order or in parallel from multiple threads.
  GeneratedDomain Generate(size_t index) const;

  std::vector<GeneratedDomain> GenerateAll() const;

  // One record from a new-TLD registry (Table 2). `tld` must be one of
  // TemplateLibrary::NewTldNames().
  GeneratedDomain GenerateNewTld(const std::string& tld,
                                 uint64_t salt = 0) const;

  // The thin (registry) record for a generated domain (§2.2's first hop).
  whois::LabeledRecord RenderThin(const DomainFacts& facts) const;

  const CorpusOptions& options() const { return options_; }
  const RegistrarTable& registrars() const { return registrars_; }
  const TemplateLibrary& templates() const { return templates_; }

  // Per-year sampling weights for creation dates (Figure 4a's shape).
  std::vector<double> YearWeights() const;

  // The country mix used for registrars WITHOUT a tilt, for registrations
  // created in `year`. Computed so that the volume-weighted total across
  // all registrars (tilted + untilted) matches the global per-year target
  // (Table 3 / Figure 4b) instead of double-counting the tilts.
  const std::vector<double>& FallbackCountryWeights(int year) const;

 private:
  DomainFacts MakeFacts(util::Rng& rng, size_t index) const;
  void BuildFallbackCountryWeights();

  CorpusOptions options_;
  RegistrarTable registrars_;
  TemplateLibrary templates_;
  TemplateEngine engine_;
  EntityGenerator entities_;
  // [year - min_year] -> weights over Countries().
  std::vector<std::vector<double>> fallback_country_weights_;
};

}  // namespace whoiscrf::datagen
