// Privacy / proxy protection services (paper §6.3, Table 7).
#pragma once

#include <span>
#include <string_view>

#include "util/random.h"

namespace whoiscrf::datagen {

struct PrivacyService {
  std::string_view name;   // as it appears in WHOIS registrant fields
  double share;            // share among protected domains (Table 7)
};

// The modeled services, including the generic names the paper notes do not
// correspond to identifiable organizations.
std::span<const PrivacyService> PrivacyServices();

// Base rate of privacy protection for registrations created in `year`
// (rising over time; passes 20% in 2014 — Figure 4b).
double PrivacyRateForYear(int year);

// Draws a service name: the registrar's house service when it has one,
// otherwise from the Table 7 distribution.
std::string_view SamplePrivacyService(util::Rng& rng,
                                      std::string_view registrar_service);

}  // namespace whoiscrf::datagen
