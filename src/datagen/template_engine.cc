#include "datagen/template_engine.h"

#include <array>
#include <stdexcept>

#include "util/string_util.h"

namespace whoiscrf::datagen {

namespace {

constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

std::string ApplyCasing(const std::string& s, Casing casing) {
  switch (casing) {
    case Casing::kAsIs: return s;
    case Casing::kUpper: return util::ToUpper(s);
    case Casing::kLower: return util::ToLower(s);
  }
  return s;
}

struct RenderState {
  std::string text;
  std::vector<whois::Level1Label> labels;
  std::vector<std::optional<whois::Level2Label>> subs;
};

void EmitLine(RenderState& state, const std::string& line,
              whois::Level1Label label,
              std::optional<whois::Level2Label> sub) {
  state.text += line;
  state.text += '\n';
  state.labels.push_back(label);
  state.subs.push_back(sub);
}

void EmitBlank(RenderState& state) { state.text += '\n'; }

// Values a slot resolves to; multi-valued slots produce several lines.
std::vector<std::string> ResolveSlot(const Element& e,
                                     const DomainFacts& f) {
  const ContactFacts& r = f.registrant;
  switch (e.slot) {
    case Slot::kDomainName: return {f.domain};
    case Slot::kRegistrarName: return {f.registrar_name};
    case Slot::kRegistrarUrl: return {f.registrar_url};
    case Slot::kWhoisServer: return {f.whois_server};
    case Slot::kIanaId: return {f.iana_id};
    case Slot::kNameServers: return f.name_servers;
    case Slot::kStatuses: return f.statuses;
    case Slot::kDnssec: return {"unsigned"};
    case Slot::kCreated: return {f.created};
    case Slot::kUpdated: return {f.updated};
    case Slot::kExpires: return {f.expires};
    case Slot::kRegName: return {r.name};
    case Slot::kRegId: return {r.id};
    case Slot::kRegOrg: return {r.org};
    case Slot::kRegStreet: {
      std::vector<std::string> out;
      if (!r.street1.empty()) out.push_back(r.street1);
      if (!r.street2.empty()) out.push_back(r.street2);
      return out;
    }
    case Slot::kRegCity: return {r.city};
    case Slot::kRegState: return {r.state};
    case Slot::kRegPostcode: return {r.postcode};
    case Slot::kRegCountryCode: return {r.country_code};
    case Slot::kRegCountryName:
      return {r.country_name.empty() ? r.country_code : r.country_name};
    case Slot::kRegCityStateZip: {
      std::string line = r.city;
      if (!r.state.empty()) line += ", " + r.state;
      if (!r.postcode.empty()) line += " " + r.postcode;
      return {line};
    }
    case Slot::kRegPhone: return {r.phone};
    case Slot::kRegFax: return {r.fax};
    case Slot::kRegEmail: return {r.email};
    case Slot::kAdminName: return {f.admin.name};
    case Slot::kAdminEmail: return {f.admin.email};
    case Slot::kAdminPhone: return {f.admin.phone};
    case Slot::kTechName: return {f.tech.name};
    case Slot::kTechEmail: return {f.tech.email};
    case Slot::kTechPhone: return {f.tech.phone};
    case Slot::kLiteral: return {e.literal};
  }
  return {};
}

}  // namespace

std::string TemplateEngine::FormatDate(const std::string& iso,
                                       DateStyle style) {
  // Expect YYYY-MM-DD prefix.
  if (iso.size() < 10 || iso[4] != '-' || iso[7] != '-') return iso;
  const std::string year = iso.substr(0, 4);
  const std::string month = iso.substr(5, 2);
  const std::string day = iso.substr(8, 2);
  const int month_index = (month[0] - '0') * 10 + (month[1] - '0') - 1;
  if (month_index < 0 || month_index > 11) return iso;
  switch (style) {
    case DateStyle::kIso:
      return year + "-" + month + "-" + day;
    case DateStyle::kIsoTime:
      return iso.size() > 10 ? iso : year + "-" + month + "-" + day +
                                         "T00:00:00Z";
    case DateStyle::kDMonY:
      return day + "-" + kMonthNames[static_cast<size_t>(month_index)] + "-" +
             year;
    case DateStyle::kSlashes:
      return year + "/" + month + "/" + day;
    case DateStyle::kUsSlashes:
      return month + "/" + day + "/" + year;
  }
  return iso;
}

whois::LabeledRecord TemplateEngine::Render(const TemplateSpec& spec,
                                            const DomainFacts& facts) const {
  RenderState state;

  auto format_value = [&](const Element& e, const std::string& raw) {
    std::string value = raw;
    if (e.slot == Slot::kCreated || e.slot == Slot::kUpdated ||
        e.slot == Slot::kExpires) {
      value = FormatDate(value, spec.date_style);
    }
    if (e.slot == Slot::kDomainName) {
      // Most registries display the domain upper-case; honor value casing.
      value = ApplyCasing(value, spec.value_casing);
    }
    return value;
  };

  for (const Element& e : spec.elements) {
    switch (e.kind) {
      case Element::Kind::kBlank:
        EmitBlank(state);
        break;
      case Element::Kind::kHeader: {
        EmitLine(state, ApplyCasing(e.title, spec.title_casing), e.label,
                 e.label == whois::Level1Label::kRegistrant
                     ? e.sub
                     : std::nullopt);
        break;
      }
      case Element::Kind::kBoilerplate: {
        for (std::string_view line : util::SplitLines(e.literal)) {
          if (util::HasAlnum(line)) {
            EmitLine(state, std::string(line), e.label, std::nullopt);
          } else {
            state.text += line;
            state.text += '\n';
          }
        }
        break;
      }
      case Element::Kind::kField: {
        for (const std::string& raw : ResolveSlot(e, facts)) {
          const std::string value = format_value(e, raw);
          if (value.empty() && e.skip_if_empty) continue;
          std::string line;
          if (e.indent) line += spec.indent;
          if (!e.title.empty()) {
            line += ApplyCasing(e.title, spec.title_casing);
            line += spec.separator;
          }
          line += value;
          if (!util::HasAlnum(line)) continue;  // nothing labelable
          EmitLine(state, line, e.label, e.sub);
        }
        break;
      }
    }
  }

  whois::LabeledRecord record;
  record.domain = facts.domain;
  record.text = std::move(state.text);
  record.labels = std::move(state.labels);
  record.sub_labels = std::move(state.subs);
  record.Validate();
  return record;
}

whois::LabeledRecord TemplateEngine::RenderThin(
    const DomainFacts& facts) const {
  // Verisign's thin com format (stable for decades).
  TemplateSpec spec;
  spec.id = "verisign/thin";
  spec.separator = ": ";
  spec.date_style = DateStyle::kDMonY;
  spec.value_casing = Casing::kUpper;  // Verisign displays the domain in caps
  using L = whois::Level1Label;
  spec.elements = {
      Boilerplate(
          "Whois Server Version 2.0\n"
          "\n"
          "Domain names in the .com and .net domains can now be registered\n"
          "with many different competing registrars. Go to "
          "http://www.internic.net\n"
          "for detailed information."),
      Blank(),
      Field(L::kDomain, "   Domain Name", Slot::kDomainName),
      Field(L::kRegistrar, "   Registrar", Slot::kRegistrarName),
      Field(L::kRegistrar, "   Sponsoring Registrar IANA ID", Slot::kIanaId),
      Field(L::kRegistrar, "   Whois Server", Slot::kWhoisServer),
      Field(L::kRegistrar, "   Referral URL", Slot::kRegistrarUrl),
      Field(L::kDomain, "   Name Server", Slot::kNameServers),
      Field(L::kDomain, "   Status", Slot::kStatuses),
      Field(L::kDate, "   Updated Date", Slot::kUpdated),
      Field(L::kDate, "   Creation Date", Slot::kCreated),
      Field(L::kDate, "   Expiration Date", Slot::kExpires),
      Blank(),
      Boilerplate(">>> Last update of whois database: 2015-02-14T00:00:00Z <<<"),
  };
  return Render(spec, facts);
}

}  // namespace whoiscrf::datagen
