#include "util/table.h"

#include <algorithm>
#include <stdexcept>

namespace whoiscrf::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

std::string TextTable::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      if (c == 0) {
        cell.append(widths[c] - cell.size(), ' ');  // left align
      } else {
        cell.insert(0, widths[c] - cell.size(), ' ');  // right align
      }
      if (c > 0) line += "  ";
      line += cell;
    }
    // Trim trailing spaces from left-aligned last column.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string rule;
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  rule.assign(total, '-');
  rule += "\n";

  std::string out = render_row(headers_);
  out += rule;
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule;
    } else {
      out += render_row(row);
    }
  }
  return out;
}

}  // namespace whoiscrf::util
