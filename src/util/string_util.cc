#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "util/byte_scan.h"

namespace whoiscrf::util {

std::string_view TrimLeft(std::string_view s) {
  const size_t i = scan::SkipSpace(s);
  return i == std::string_view::npos ? s.substr(s.size()) : s.substr(i);
}

std::string_view TrimRight(std::string_view s) {
  size_t n = s.size();
  while (n > 0 && scan::InClass(s[n - 1], scan::kSpace)) --n;
  return s.substr(0, n);
}

std::string_view Trim(std::string_view s) { return TrimRight(TrimLeft(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  scan::AsciiLower(out.data(), out.size(), out.data());
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    const size_t start = scan::SkipSpace(s, i);
    if (start == std::string_view::npos) break;
    size_t end = scan::FindSpace(s, start);
    if (end == std::string_view::npos) end = s.size();
    out.push_back(s.substr(start, end - start));
    i = end;
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view text) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      size_t end = i;
      if (end > start && text[end - 1] == '\r') --end;
      out.push_back(text.substr(start, end - start));
      start = i + 1;
    } else if (text[i] == '\r' &&
               (i + 1 >= text.size() || text[i + 1] != '\n')) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) out.push_back(text.substr(start));
  return out;
}

template <typename T>
static std::string JoinImpl(const std::vector<T>& parts,
                            std::string_view sep) {
  std::string out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return true;
    }
  }
  return false;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool IsDigits(std::string_view s) { return scan::AllDigits(s); }

bool HasAlnum(std::string_view s) { return scan::HasAlnum(s); }

std::string WithCommas(long long n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace whoiscrf::util
