// Durable small-file primitives for checkpoint journals.
//
// Crash-safety contract: AtomicWriteFile either leaves the previous file
// contents fully intact or fully replaces them — never a torn mix. It
// writes a sibling temp file, fsyncs it, renames it over the target
// (atomic on POSIX), and fsyncs the parent directory so the rename itself
// survives a power cut. This is the snapshot half of every checkpoint in
// the repo (stream checkpoints, sealed record-store shards); the
// append-only half (the crawl journal) fsyncs its own fd per entry.
#pragma once

#include <string>
#include <string_view>

namespace whoiscrf::util {

// Durably replaces `path` with `contents` (write temp + fsync + rename +
// parent-dir fsync). Throws std::runtime_error on any I/O failure, after
// removing the temp file.
void AtomicWriteFile(const std::string& path, std::string_view contents);

// Reads the whole file into `out`. Returns false when the file cannot be
// opened (commonly: it does not exist); throws on read errors.
bool ReadFileToString(const std::string& path, std::string& out);

// fsyncs the directory containing `path`, making a completed rename of
// `path` durable. Best-effort: silently ignores filesystems that refuse
// to fsync directories.
void FsyncParentDir(const std::string& path);

}  // namespace whoiscrf::util
