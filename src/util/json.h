// Minimal JSON writer (no parsing, no DOM): enough to export parsed WHOIS
// records as structured data. Strings are escaped per RFC 8259; output is
// deterministic (insertion order).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace whoiscrf::util {

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object key; must be followed by a value (or Begin*).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(long long value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Convenience: Key + String / skip when value empty.
  JsonWriter& Field(std::string_view key, std::string_view value);
  JsonWriter& FieldIfNonEmpty(std::string_view key, std::string_view value);

  const std::string& str() const { return out_; }

  // Hands the finished document to the caller without a copy; the writer
  // is left empty and should not be reused.
  std::string Release() { return std::move(out_); }

  static std::string Escape(std::string_view raw);

 private:
  void MaybeComma();
  std::string out_;
  // True when the next value at this nesting level needs a ',' first.
  std::vector<bool> need_comma_{false};
  bool after_key_ = false;
};

}  // namespace whoiscrf::util
