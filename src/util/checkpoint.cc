#include "util/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace whoiscrf::util {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[noreturn]] void Fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);  // EINVAL on filesystems that refuse: durability best-effort
  ::close(fd);
}

void AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) Fail("cannot create", tmp);
  size_t done = 0;
  while (done < contents.size()) {
    const ssize_t w =
        ::write(fd, contents.data() + done, contents.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      Fail("cannot write", tmp);
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    Fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    Fail("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    Fail("cannot rename into", path);
  }
  FsyncParentDir(path);
}

bool ReadFileToString(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      Fail("cannot read", path);
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return true;
}

}  // namespace whoiscrf::util
