// Bounded multi-producer/multi-consumer queue with blocking backpressure —
// the coupling between the stages of the streaming parse pipeline.
//
// Capacity is a hard bound: Push blocks while the queue is full, so a fast
// reader can never buffer more than `capacity` items ahead of slow
// consumers (this is what keeps the pipeline's memory O(chunk) instead of
// O(corpus)). Close() ends input while letting queued items drain; Cancel()
// additionally discards queued items — the shutdown path when a stage
// fails and the others must not block forever.
//
// Both blocking calls can report how long they waited (stall time), which
// the pipeline aggregates into the whoiscrf_stream_*_stall_seconds_total
// metrics; timing happens only on the slow path, so an uncontended
// push/pop never reads the clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace whoiscrf::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is at capacity. Returns true once `item` is
  // enqueued; false (dropping `item`) if the queue is closed or cancelled.
  // When `stalled_seconds` is non-null, the time spent blocked is added to
  // it.
  bool Push(T item, double* stalled_seconds = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      const auto t0 = Clock::now();
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      AddStall(t0, stalled_seconds);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking admission (the serve layer's fast-reject path): enqueues
  // and returns true when the queue is open and below capacity; otherwise
  // returns false immediately. On failure `item` is left untouched, so the
  // caller can still use it to build a rejection response. When
  // `size_after` is non-null it receives the queue size right after the
  // push — readable for free under the lock already held, where a separate
  // Size() call would pay another acquisition.
  bool TryPush(T& item, size_t* size_after = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (size_after != nullptr) *size_after = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty and still open. Returns the oldest
  // item, or nullopt once the queue is closed and drained (immediately if
  // cancelled). When `stalled_seconds` is non-null, the time spent blocked
  // is added to it; when `size_after` is non-null it receives the queue
  // size right after the pop (see TryPush).
  std::optional<T> Pop(double* stalled_seconds = nullptr,
                       size_t* size_after = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      const auto t0 = Clock::now();
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      AddStall(t0, stalled_seconds);
    }
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    if (size_after != nullptr) *size_after = items_.size();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // No further pushes succeed; queued items still drain through Pop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Close and discard everything queued: every blocked producer and
  // consumer wakes immediately and gives up.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      items_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool Closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  using Clock = std::chrono::steady_clock;

  static void AddStall(Clock::time_point t0, double* stalled_seconds) {
    if (stalled_seconds != nullptr) {
      *stalled_seconds +=
          std::chrono::duration<double>(Clock::now() - t0).count();
    }
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace whoiscrf::util
