#include "util/flags.h"

#include <cstdlib>

namespace whoiscrf::util {

FlagParser::FlagParser(int argc, const char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare boolean flag
    }
    if (name.empty()) {
      errors_.push_back("empty flag name in '" + arg + "'");
      continue;
    }
    if (flags_.count(name)) {
      errors_.push_back("duplicate flag --" + name);
      continue;
    }
    flags_[name] = value;
    consumed_[name] = false;
  }
}

bool FlagParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  std::string fallback) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  consumed_[name] = true;
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  consumed_[name] = true;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + " expects an integer, got '" +
                      it->second + "'");
    return fallback;
  }
  return v;
}

double FlagParser::GetDouble(const std::string& name, double fallback) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  consumed_[name] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + " expects a number, got '" + it->second +
                      "'");
    return fallback;
  }
  return v;
}

bool FlagParser::GetBool(const std::string& name) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  consumed_[name] = true;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> FlagParser::UnconsumedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, used] : consumed_) {
    if (!used) out.push_back("--" + name);
  }
  return out;
}

}  // namespace whoiscrf::util
