#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/byte_scan.h"

namespace whoiscrf::util {

namespace {

// Escapes `raw` directly onto `out`. Clean runs (everything outside the
// RFC 8259 must-escape set: < 0x20, '"', '\\') are located with a chunked
// scan and appended in bulk, so the common all-clean string costs one
// vectorized pass and one append.
void AppendEscapedTo(std::string& out, std::string_view raw) {
  size_t run = 0;  // start of the current clean run
  for (size_t i = scan::FindJsonEscape(raw);
       i != std::string_view::npos; i = scan::FindJsonEscape(raw, i + 1)) {
    const unsigned char c = static_cast<unsigned char>(raw[i]);
    out.append(raw, run, i - run);
    run = i + 1;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      }
    }
  }
  out.append(raw, run, raw.size() - run);
}

}  // namespace

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  AppendEscapedTo(out, raw);
  return out;
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

// NOLINTBEGIN(readability-identifier-naming)
JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  AppendEscapedTo(out_, key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  AppendEscapedTo(out_, value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  return String(value);
}

JsonWriter& JsonWriter::FieldIfNonEmpty(std::string_view key,
                                        std::string_view value) {
  if (value.empty()) return *this;
  return Field(key, value);
}
// NOLINTEND(readability-identifier-naming)

}  // namespace whoiscrf::util
