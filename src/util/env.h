// Environment-variable knobs shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace whoiscrf::util {

// Returns WHOISCRF_SCALE as a positive double (default 1.0). Benches
// multiply their corpus sizes by this to trade fidelity for runtime.
double ScaleFactor();

// True when WHOISCRF_BENCH_SMOKE is set to a non-empty value other than
// "0": benches run as crash tests on tiny corpora (the bench_smoke CTest
// targets), with numbers that are meaningless as measurements.
bool BenchSmoke();

// Returns `base * ScaleFactor()`, floored at `min_value`. Under
// BenchSmoke() the result is instead clamp(min_value / 5, 8, 200), which
// overrides the floors benches rely on for statistical validity — smoke
// runs only check that the code paths execute.
size_t Scaled(size_t base, size_t min_value = 1);

// Returns the integer value of `name`, or `fallback` when unset/invalid.
int64_t EnvInt(const char* name, int64_t fallback);

// Returns the string value of `name`, or `fallback` when unset.
std::string EnvString(const char* name, const std::string& fallback);

}  // namespace whoiscrf::util
