#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace whoiscrf::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, workers_.size());
  std::atomic<size_t> remaining{chunks};
  std::exception_ptr error;
  std::mutex error_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    Submit([&, begin, end, c] {
      try {
        fn(begin, end, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
    begin = end;
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  ParallelChunks(n, [&fn](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace whoiscrf::util
