// Tiny command-line flag parser for the CLI tools.
//
// Supports "--name value", "--name=value", and boolean "--name". Unknown
// flags are collected as errors so commands can fail fast with a usage
// message. Non-flag arguments are positional.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace whoiscrf::util {

class FlagParser {
 public:
  // Parses argv[start..argc). Flags may appear in any order.
  FlagParser(int argc, const char* const* argv, int start = 1);

  // Typed accessors; consume the flag (so UnconsumedFlags can report
  // unknown/unused ones).
  std::string GetString(const std::string& name, std::string fallback = "");
  int64_t GetInt(const std::string& name, int64_t fallback = 0);
  double GetDouble(const std::string& name, double fallback = 0.0);
  bool GetBool(const std::string& name);  // presence (or =true/false)

  bool Has(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags given on the command line but never consumed by the command.
  std::vector<std::string> UnconsumedFlags() const;

  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> flags_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace whoiscrf::util
