#include "util/byte_scan.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

// Compile-time gate for the kSimd tier. x86-64 guarantees SSE2, and the
// AVX2 kernels are emitted with a per-function target attribute, so no
// special compiler flags are needed. -DWHOISCRF_NO_SIMD (the CMake
// WHOISCRF_DISABLE_SIMD option) removes the tier entirely for the
// portable build.
#if !defined(WHOISCRF_NO_SIMD) && \
    (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define WHOISCRF_SCAN_SIMD 1
#include <immintrin.h>
#else
#define WHOISCRF_SCAN_SIMD 0
#endif

namespace whoiscrf::util::scan {

namespace {

constexpr size_t kNpos = std::string_view::npos;
constexpr bool kLittleEndian = std::endian::native == std::endian::little;

// --- SWAR primitives -------------------------------------------------------
//
// All masks put 0x80 in qualifying bytes and 0x00 elsewhere, with no
// cross-byte carries or borrows, so per-byte results are exact (safe for
// both first-match ctz scans and any-match predicates).

constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHigh = 0x8080808080808080ull;
constexpr uint64_t kLow7 = ~kHigh;

inline uint64_t Load64(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

// 0x80 in every byte of `v` that is zero. Carry-free variant of the
// classic haszero trick: (low7 + 0x7f) overflows into bit 7 exactly when
// the low bits are nonzero, and bit 7 itself is OR'd back in.
inline uint64_t ZeroBytes(uint64_t v) {
  return ~(((v & kLow7) + kLow7) | v | kLow7);
}

inline uint64_t EqBytes(uint64_t v, uint8_t b) {
  return ZeroBytes(v ^ (kOnes * b));
}

// 0x80 in bytes >= n (unsigned), for n in [1, 128].
inline uint64_t GeBytes(uint64_t v, uint8_t n) {
  return (((v & kLow7) + ((128 - n) * kOnes)) | v) & kHigh;
}

// 0x80 in bytes within [lo, hi] (unsigned), for 1 <= lo <= hi <= 127.
inline uint64_t RangeBytes(uint64_t v, uint8_t lo, uint8_t hi) {
  return GeBytes(v, lo) & ~GeBytes(v, static_cast<uint8_t>(hi + 1));
}

inline uint64_t SpaceBytes(uint64_t v) {
  return EqBytes(v, ' ') | RangeBytes(v, 0x09, 0x0D);
}

inline uint64_t NewlineBytes(uint64_t v) {
  return EqBytes(v, '\n') | EqBytes(v, '\r');
}

inline uint64_t JsonEscapeBytes(uint64_t v) {
  return (~GeBytes(v, 0x20) & kHigh) | EqBytes(v, '"') | EqBytes(v, '\\');
}

inline uint64_t SepTriggerBytes(uint64_t v) {
  return EqBytes(v, ':') | EqBytes(v, '.') | EqBytes(v, '\t') |
         EqBytes(v, '=') | EqBytes(v, ' ');
}

inline uint64_t AlnumBytes(uint64_t v) {
  return RangeBytes(v, '0', '9') | RangeBytes(v, 'A', 'Z') |
         RangeBytes(v, 'a', 'z');
}

// Byte index of the lowest 0x80 flag (little-endian byte order).
inline size_t FirstFlag(uint64_t mask) {
  return static_cast<size_t>(std::countr_zero(mask)) >> 3;
}

// First byte at/after `from` whose SWAR mask bit is set; scalar table tail
// (no over-read past the end of `s`).
template <typename MaskFn>
inline size_t FindSwarT(std::string_view s, size_t from, MaskFn mask_of,
                        uint8_t cls) {
  const char* p = s.data();
  const size_t n = s.size();
  size_t i = from;
  for (; i + 8 <= n; i += 8) {
    const uint64_t m = mask_of(Load64(p + i));
    if (m) return i + FirstFlag(m);
  }
  for (; i < n; ++i) {
    if (ClassOf(p[i]) & cls) return i;
  }
  return kNpos;
}

// First byte at/after `from` whose mask bit is NOT set.
template <typename MaskFn>
inline size_t FindNotSwarT(std::string_view s, size_t from, MaskFn mask_of,
                           uint8_t cls) {
  const char* p = s.data();
  const size_t n = s.size();
  size_t i = from;
  for (; i + 8 <= n; i += 8) {
    const uint64_t m = ~mask_of(Load64(p + i)) & kHigh;
    if (m) return i + FirstFlag(m);
  }
  for (; i < n; ++i) {
    if (!(ClassOf(p[i]) & cls)) return i;
  }
  return kNpos;
}

// --- Scalar reference ------------------------------------------------------

inline size_t FindClassScalar(std::string_view s, uint8_t mask, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (ClassOf(s[i]) & mask) return i;
  }
  return kNpos;
}

inline size_t FindNotClassScalar(std::string_view s, uint8_t mask,
                                 size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (!(ClassOf(s[i]) & mask)) return i;
  }
  return kNpos;
}

// --- SSE2 / AVX2 -----------------------------------------------------------

#if WHOISCRF_SCAN_SIMD

inline bool HasAvx2() {
  static const bool v = __builtin_cpu_supports("avx2");
  return v;
}

// 0xFF lanes for bytes within [lo, hi] (unsigned).
inline __m128i RangeVec(__m128i v, uint8_t lo, uint8_t hi) {
  const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, _mm_set1_epi8(lo)), v);
  const __m128i le = _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(hi)), v);
  return _mm_and_si128(ge, le);
}

inline __m128i EqVec(__m128i v, char c) {
  return _mm_cmpeq_epi8(v, _mm_set1_epi8(c));
}

inline __m128i SpaceVec(__m128i v) {
  return _mm_or_si128(EqVec(v, ' '), RangeVec(v, 0x09, 0x0D));
}

inline __m128i NewlineVec(__m128i v) {
  return _mm_or_si128(EqVec(v, '\n'), EqVec(v, '\r'));
}

inline __m128i JsonEscapeVec(__m128i v) {
  const __m128i ctrl = _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(0x1F)), v);
  return _mm_or_si128(ctrl, _mm_or_si128(EqVec(v, '"'), EqVec(v, '\\')));
}

inline __m128i SepTriggerVec(__m128i v) {
  return _mm_or_si128(
      _mm_or_si128(EqVec(v, ':'), EqVec(v, '.')),
      _mm_or_si128(EqVec(v, '\t'),
                   _mm_or_si128(EqVec(v, '='), EqVec(v, ' '))));
}

inline __m128i AlnumVec(__m128i v) {
  return _mm_or_si128(RangeVec(v, '0', '9'),
                      _mm_or_si128(RangeVec(v, 'A', 'Z'),
                                   RangeVec(v, 'a', 'z')));
}

template <typename VecFn>
inline size_t FindSseT(std::string_view s, size_t from, VecFn vec_of,
                       uint8_t cls) {
  const char* p = s.data();
  const size_t n = s.size();
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned m = static_cast<unsigned>(_mm_movemask_epi8(vec_of(v)));
    if (m) return i + static_cast<size_t>(std::countr_zero(m));
  }
  for (; i < n; ++i) {
    if (ClassOf(p[i]) & cls) return i;
  }
  return kNpos;
}

template <typename VecFn>
inline size_t FindNotSseT(std::string_view s, size_t from, VecFn vec_of,
                          uint8_t cls) {
  const char* p = s.data();
  const size_t n = s.size();
  size_t i = from;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned m =
        ~static_cast<unsigned>(_mm_movemask_epi8(vec_of(v))) & 0xFFFFu;
    if (m) return i + static_cast<size_t>(std::countr_zero(m));
  }
  for (; i < n; ++i) {
    if (!(ClassOf(p[i]) & cls)) return i;
  }
  return kNpos;
}

// AVX2 variants for the two scans that see long buffers (record framing
// and JSON emission); everything else works on single short lines where
// 16-byte chunks already cover the whole string.

__attribute__((target("avx2"))) size_t FindNewlineAvx2(std::string_view s,
                                                       size_t from) {
  const char* p = s.data();
  const size_t n = s.size();
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i hit =
        _mm256_or_si256(_mm256_cmpeq_epi8(v, _mm256_set1_epi8('\n')),
                        _mm256_cmpeq_epi8(v, _mm256_set1_epi8('\r')));
    const unsigned m = static_cast<unsigned>(_mm256_movemask_epi8(hit));
    if (m) return i + static_cast<size_t>(std::countr_zero(m));
  }
  return FindSseT(s, i, NewlineVec, kNewline);
}

__attribute__((target("avx2"))) size_t FindJsonEscapeAvx2(std::string_view s,
                                                          size_t from) {
  const char* p = s.data();
  const size_t n = s.size();
  size_t i = from;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i ctrl = _mm256_cmpeq_epi8(
        _mm256_min_epu8(v, _mm256_set1_epi8(0x1F)), v);
    const __m256i hit = _mm256_or_si256(
        ctrl, _mm256_or_si256(_mm256_cmpeq_epi8(v, _mm256_set1_epi8('"')),
                              _mm256_cmpeq_epi8(v, _mm256_set1_epi8('\\'))));
    const unsigned m = static_cast<unsigned>(_mm256_movemask_epi8(hit));
    if (m) return i + static_cast<size_t>(std::countr_zero(m));
  }
  return FindSseT(s, i, JsonEscapeVec, kJsonEscape);
}

#endif  // WHOISCRF_SCAN_SIMD

// --- Mode resolution -------------------------------------------------------

Mode ParseModeName(const char* name) {
  if (name == nullptr) return BestSupportedMode();
  const std::string_view s(name);
  if (s == "scalar") return Mode::kScalar;
  if (s == "swar") return Mode::kSwar;
  if (s == "simd") return Mode::kSimd;
  return BestSupportedMode();
}

Mode ClampMode(Mode m) {
  const auto best = static_cast<int>(BestSupportedMode());
  const int want = static_cast<int>(m);
  return static_cast<Mode>(want < best ? want : best);
}

Mode DefaultMode() {
  static const Mode mode =
      ClampMode(ParseModeName(std::getenv("WHOISCRF_SCAN_MODE")));
  return mode;
}

// -1 = no override; otherwise a Mode value pinned by ForceMode().
std::atomic<int> g_forced_mode{-1};

}  // namespace

Mode BestSupportedMode() {
#if WHOISCRF_SCAN_SIMD
  return Mode::kSimd;  // SSE2 is part of the x86-64 baseline ABI.
#else
  return kLittleEndian ? Mode::kSwar : Mode::kScalar;
#endif
}

Mode ActiveMode() {
  const int forced = g_forced_mode.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Mode>(forced);
  return DefaultMode();
}

void ForceMode(Mode mode) {
  g_forced_mode.store(static_cast<int>(ClampMode(mode)),
                      std::memory_order_relaxed);
}

void ClearForcedMode() {
  g_forced_mode.store(-1, std::memory_order_relaxed);
}

std::string_view ModeName(Mode mode) {
  switch (mode) {
    case Mode::kScalar: return "scalar";
    case Mode::kSwar: return "swar";
    case Mode::kSimd: return "simd";
  }
  return "?";
}

bool SimdAvailable() {
#if WHOISCRF_SCAN_SIMD
  return true;
#else
  return false;
#endif
}

// --- Public scans ----------------------------------------------------------

size_t FindClass(std::string_view s, uint8_t mask, size_t from) {
  return FindClassScalar(s, mask, from);
}

size_t FindNewline(std::string_view s, size_t from) {
  switch (ActiveMode()) {
#if WHOISCRF_SCAN_SIMD
    case Mode::kSimd:
      if (HasAvx2() && s.size() - from >= 32) return FindNewlineAvx2(s, from);
      return FindSseT(s, from, NewlineVec, kNewline);
#endif
    case Mode::kSwar:
      return FindSwarT(s, from, NewlineBytes, kNewline);
    default:
      return FindClassScalar(s, kNewline, from);
  }
}

size_t FindSpace(std::string_view s, size_t from) {
  switch (ActiveMode()) {
#if WHOISCRF_SCAN_SIMD
    case Mode::kSimd:
      return FindSseT(s, from, SpaceVec, kSpace);
#endif
    case Mode::kSwar:
      return FindSwarT(s, from, SpaceBytes, kSpace);
    default:
      return FindClassScalar(s, kSpace, from);
  }
}

size_t SkipSpace(std::string_view s, size_t from) {
  switch (ActiveMode()) {
#if WHOISCRF_SCAN_SIMD
    case Mode::kSimd:
      return FindNotSseT(s, from, SpaceVec, kSpace);
#endif
    case Mode::kSwar:
      return FindNotSwarT(s, from, SpaceBytes, kSpace);
    default:
      return FindNotClassScalar(s, kSpace, from);
  }
}

size_t FindJsonEscape(std::string_view s, size_t from) {
  switch (ActiveMode()) {
#if WHOISCRF_SCAN_SIMD
    case Mode::kSimd:
      if (HasAvx2() && s.size() - from >= 32) {
        return FindJsonEscapeAvx2(s, from);
      }
      return FindSseT(s, from, JsonEscapeVec, kJsonEscape);
#endif
    case Mode::kSwar:
      return FindSwarT(s, from, JsonEscapeBytes, kJsonEscape);
    default:
      return FindClassScalar(s, kJsonEscape, from);
  }
}

size_t FindSepTrigger(std::string_view s, size_t from) {
  switch (ActiveMode()) {
#if WHOISCRF_SCAN_SIMD
    case Mode::kSimd:
      return FindSseT(s, from, SepTriggerVec, kSepTrigger);
#endif
    case Mode::kSwar:
      return FindSwarT(s, from, SepTriggerBytes, kSepTrigger);
    default:
      return FindClassScalar(s, kSepTrigger, from);
  }
}

bool HasAlnum(std::string_view s) {
  switch (ActiveMode()) {
#if WHOISCRF_SCAN_SIMD
    case Mode::kSimd:
      return FindSseT(s, 0, AlnumVec, kAlnum) != kNpos;
#endif
    case Mode::kSwar:
      return FindSwarT(s, 0, AlnumBytes, kAlnum) != kNpos;
    default:
      return FindClassScalar(s, kAlnum, 0) != kNpos;
  }
}

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  switch (ActiveMode()) {
#if WHOISCRF_SCAN_SIMD
    case Mode::kSimd:
      return FindNotSseT(
                 s, 0, [](__m128i v) { return RangeVec(v, '0', '9'); },
                 kDigit) == kNpos;
#endif
    case Mode::kSwar:
      return FindNotSwarT(
                 s, 0, [](uint64_t v) { return RangeBytes(v, '0', '9'); },
                 kDigit) == kNpos;
    default:
      return FindNotClassScalar(s, kDigit, 0) == kNpos;
  }
}

void AsciiLower(const char* in, size_t n, char* out) {
  size_t i = 0;
  // SWAR body on every non-scalar tier: lowering ORs bit 5 into bytes in
  // [A, Z], and 0x80 >> 2 == 0x20 turns the range mask into exactly that.
  if (ActiveMode() != Mode::kScalar) {
    for (; i + 8 <= n; i += 8) {
      uint64_t w = Load64(in + i);
      w |= RangeBytes(w, 'A', 'Z') >> 2;
      std::memcpy(out + i, &w, sizeof(w));
    }
  }
  for (; i < n; ++i) {
    const char c = in[i];
    out[i] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c | 0x20) : c;
  }
}

}  // namespace whoiscrf::util::scan
