// Plain-text table rendering for bench/report output.
//
// Every bench binary prints tables in the same row/column structure as the
// corresponding table in the paper; this helper keeps them aligned and
// readable.
#pragma once

#include <string>
#include <vector>

namespace whoiscrf::util {

class TextTable {
 public:
  // `headers` defines the column count; every AddRow must match it.
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Inserts a horizontal rule before the next added row (used to separate
  // the "Total" row, as in the paper's tables).
  void AddSeparator();

  // Renders with a header rule and column alignment: first column
  // left-aligned, the rest right-aligned (matches the paper's layout).
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace whoiscrf::util
