// Minimal leveled logger.
//
// Usage: LOG_INFO("trained %d iterations, nll=%.4f", iters, nll);
// Levels are filtered at runtime via SetLogLevel or the WHOISCRF_LOG env var
// (one of "debug", "info", "warn", "error", "off").
#pragma once

#include <string_view>

#include "util/string_util.h"

namespace whoiscrf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view message);

}  // namespace whoiscrf::util

#define WHOISCRF_LOG(level, ...)                                          \
  do {                                                                    \
    if (static_cast<int>(level) >=                                        \
        static_cast<int>(::whoiscrf::util::GetLogLevel())) {              \
      ::whoiscrf::util::LogMessage(level, __FILE__, __LINE__,             \
                                   ::whoiscrf::util::Format(__VA_ARGS__)); \
    }                                                                     \
  } while (0)

#define LOG_DEBUG(...) \
  WHOISCRF_LOG(::whoiscrf::util::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) \
  WHOISCRF_LOG(::whoiscrf::util::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) \
  WHOISCRF_LOG(::whoiscrf::util::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) \
  WHOISCRF_LOG(::whoiscrf::util::LogLevel::kError, __VA_ARGS__)
