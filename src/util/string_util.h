// String helpers shared across the library.
//
// All functions are pure and allocation-conscious: views in, owned strings
// out only where ownership is required.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace whoiscrf::util {

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

// Removes leading ASCII whitespace only.
std::string_view TrimLeft(std::string_view s);

// Removes trailing ASCII whitespace only.
std::string_view TrimRight(std::string_view s);

// Lower-cases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToLower(std::string_view s);

// Upper-cases ASCII characters; non-ASCII bytes pass through unchanged.
std::string ToUpper(std::string_view s);

// Splits `s` on the single character `sep`. Empty fields are preserved.
std::vector<std::string_view> Split(std::string_view s, char sep);

// Splits `s` into maximal runs separated by ASCII whitespace. No empty
// fields are produced.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

// Splits a record body into lines, accepting "\n", "\r\n", and bare "\r".
std::vector<std::string_view> SplitLines(std::string_view text);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Case-insensitive (ASCII) containment / equality tests.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// True if every character satisfies isdigit.
bool IsDigits(std::string_view s);

// True if `s` contains at least one ASCII alphanumeric character. Lines
// failing this test are "unlabeled" lines in the paper's tokenization.
bool HasAlnum(std::string_view s);

// Formats `n` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithCommas(long long n);

// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace whoiscrf::util
