// Chunked byte input for the streaming record pipeline: a minimal
// ByteSource interface plus file, istream, and in-memory implementations.
//
// A ByteSource hands out fixed-size chunks (views valid until the next
// call), so a scanner can process a corpus far larger than memory while
// touching at most one chunk at a time. FileByteSource serves a regular
// file zero-copy from an mmap'ed region (advised MADV_SEQUENTIAL); pipes
// and other unmappable inputs fall back to buffered reads transparently.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace whoiscrf::util {

// Default chunk size for streaming readers: large enough that per-chunk
// bookkeeping vanishes against parse cost, small enough that a pipeline's
// resident set stays a few MiB regardless of corpus size.
inline constexpr size_t kDefaultChunkBytes = size_t{1} << 20;

class ByteSource {
 public:
  virtual ~ByteSource() = default;

  // Returns the next chunk of input. The view stays valid until the next
  // Next() call (or destruction). An empty view means end of input.
  virtual std::string_view Next() = 0;
};

// Regular file, served from mmap when the file can be mapped, buffered
// read(2) otherwise. Throws std::runtime_error when the file cannot be
// opened.
class FileByteSource : public ByteSource {
 public:
  explicit FileByteSource(const std::string& path,
                          size_t chunk_bytes = kDefaultChunkBytes);
  ~FileByteSource() override;

  FileByteSource(const FileByteSource&) = delete;
  FileByteSource& operator=(const FileByteSource&) = delete;

  std::string_view Next() override;

  // True when chunks are views into an mmap'ed region (introspection for
  // tests and the bench).
  bool mapped() const { return map_ != nullptr; }

 private:
  int fd_ = -1;
  size_t chunk_bytes_;
  const char* map_ = nullptr;  // non-null iff the file is mapped
  size_t map_size_ = 0;
  size_t pos_ = 0;                 // mmap read cursor
  size_t released_ = 0;            // consumed pages MADV_DONTNEED'd so far
  std::vector<char> buffer_;       // read(2) fallback
};

// Wraps any std::istream (stdin, stringstream). The stream must outlive
// the source.
class StreamByteSource : public ByteSource {
 public:
  explicit StreamByteSource(std::istream& is,
                            size_t chunk_bytes = kDefaultChunkBytes);
  std::string_view Next() override;

 private:
  std::istream& is_;
  std::vector<char> buffer_;
};

// A string_view chopped into chunks (tests exercise chunk-boundary
// handling by making chunks pathologically small). The data must outlive
// the source.
class MemoryByteSource : public ByteSource {
 public:
  explicit MemoryByteSource(std::string_view data,
                            size_t chunk_bytes = kDefaultChunkBytes);
  std::string_view Next() override;

 private:
  std::string_view data_;
  size_t chunk_bytes_;
  size_t pos_ = 0;
};

}  // namespace whoiscrf::util
