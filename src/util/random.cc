#include "util/random.h"

#include <cmath>

namespace whoiscrf::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::UniformInt: lo > hi");
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = NextU64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("Rng::WeightedIndex: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::WeightedIndex: no positive weight");
  }
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack
}

size_t Rng::Zipf(size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("Rng::Zipf: n == 0");
  // Direct inversion over the (small) discrete CDF; n is at most a few
  // thousand in our generators so O(n) is fine.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  double r = UniformDouble() * total;
  for (size_t i = 0; i < n; ++i) {
    r -= 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    if (r < 0.0) return i;
  }
  return n - 1;
}

Rng Rng::Fork(uint64_t salt) {
  return Rng(NextU64() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

}  // namespace whoiscrf::util
