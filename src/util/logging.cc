#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace whoiscrf::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::once_flag g_env_once;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void InitFromEnv() {
  const char* env = std::getenv("WHOISCRF_LOG");
  if (env == nullptr) return;
  std::string_view v(env);
  if (v == "debug") g_level = LogLevel::kDebug;
  else if (v == "info") g_level = LogLevel::kInfo;
  else if (v == "warn") g_level = LogLevel::kWarn;
  else if (v == "error") g_level = LogLevel::kError;
  else if (v == "off") g_level = LogLevel::kOff;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return g_level;
}

void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view message) {
  // Strip directories for readability.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", LevelName(level),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace whoiscrf::util
