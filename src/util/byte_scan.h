// Branchless / vectorized byte-scanning primitives for the text hot path.
//
// The parser's per-record cost is dominated by byte-at-a-time loops:
// line splitting, whitespace word splitting, separator detection, %%-frame
// scanning, and JSON escaping all walk the record one byte and one branch
// at a time. This module replaces those walks with three interchangeable
// implementation tiers, all with identical observable behavior:
//
//   kScalar  one 256-entry classification-table lookup per byte; the
//            reference implementation and the portable floor.
//   kSwar    uint64_t-at-a-time "SIMD within a register": 8 bytes per
//            iteration using carry-free equality/range masks. Portable
//            C++ (little-endian hosts; big-endian falls back to scalar).
//   kSimd    SSE2 (x86-64 baseline) or AVX2 (runtime-detected) compare +
//            movemask scans, 16/32 bytes per iteration. Compiled only on
//            x86-64 gcc/clang; -DWHOISCRF_NO_SIMD removes it entirely
//            (the portable build), leaving kSwar as the best tier.
//
// The active tier is chosen once at startup (best supported, overridable
// with WHOISCRF_SCAN_MODE=scalar|swar|simd) and can be forced per-test
// with ForceMode() — tests/test_text_simd.cc sweeps all tiers against the
// scalar reference on randomized inputs and asserts identical output.
//
// Adding a new byte class: add a bit constant below, set it for the
// class's bytes in BuildClassTable() (byte_scan.cc), and use FindClass /
// InClass — those are table-driven and work on every tier unchanged. Only
// add a dedicated SWAR/SIMD kernel (and its dispatch switch) when a scan
// is hot enough to profile; kernels must treat bytes >= 0x80 exactly like
// the table does and are only reachable on tiers whose compile-time gates
// passed, so the portable build never needs them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace whoiscrf::util::scan {

// --- Implementation tiers --------------------------------------------------

enum class Mode { kScalar = 0, kSwar = 1, kSimd = 2 };

// Best tier this binary + CPU supports (kSimd only when compiled in and
// the CPU has at least SSE2; SWAR requires little-endian).
Mode BestSupportedMode();

// The tier scans currently run on: ForceMode override if set, else the
// WHOISCRF_SCAN_MODE environment override, else BestSupportedMode().
Mode ActiveMode();

// Test hooks: pin the tier (clamped to BestSupportedMode()) / unpin.
void ForceMode(Mode mode);
void ClearForcedMode();

// "scalar" / "swar" / "simd".
std::string_view ModeName(Mode mode);

// True when kSimd kernels are compiled into this binary and the CPU
// supports them (reporting only; ActiveMode() already accounts for it).
bool SimdAvailable();

// --- Byte classification ---------------------------------------------------
//
// One 256-entry table, one bit per class; class membership of a byte is a
// single indexed load. Masks can be OR-combined (kAlnum below).

inline constexpr uint8_t kSpace = 1u << 0;       // ' ' \t \n \v \f \r
inline constexpr uint8_t kDigit = 1u << 1;       // 0-9
inline constexpr uint8_t kUpper = 1u << 2;       // A-Z
inline constexpr uint8_t kLower = 1u << 3;       // a-z
inline constexpr uint8_t kNewline = 1u << 4;     // \n \r
inline constexpr uint8_t kJsonEscape = 1u << 5;  // < 0x20, '"', '\\'
inline constexpr uint8_t kEdgePunct = 1u << 6;   // tokenizer edge punctuation
inline constexpr uint8_t kSepTrigger = 1u << 7;  // : . \t = ' ' (separator.cc)
inline constexpr uint8_t kAlpha = kUpper | kLower;
inline constexpr uint8_t kAlnum = kAlpha | kDigit;

namespace detail {
constexpr std::array<uint8_t, 256> BuildClassTable() {
  std::array<uint8_t, 256> t{};
  auto add = [&t](unsigned char c, uint8_t bit) { t[c] |= bit; };
  for (const char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    add(static_cast<unsigned char>(c), kSpace);
  }
  for (unsigned c = '0'; c <= '9'; ++c) add(c, kDigit);
  for (unsigned c = 'A'; c <= 'Z'; ++c) add(c, kUpper);
  for (unsigned c = 'a'; c <= 'z'; ++c) add(c, kLower);
  add('\n', kNewline);
  add('\r', kNewline);
  for (unsigned c = 0; c < 0x20; ++c) add(c, kJsonEscape);
  add('"', kJsonEscape);
  add('\\', kJsonEscape);
  for (const char c : {',', '.', ';', '"', '\'', '(', ')', '[', ']', '<', '>',
                       '*', '#', '%', '!', '?'}) {
    add(static_cast<unsigned char>(c), kEdgePunct);
  }
  for (const char c : {':', '.', '\t', '=', ' '}) {
    add(static_cast<unsigned char>(c), kSepTrigger);
  }
  return t;
}
}  // namespace detail

inline constexpr std::array<uint8_t, 256> kClassTable =
    detail::BuildClassTable();

inline constexpr uint8_t ClassOf(char c) {
  return kClassTable[static_cast<unsigned char>(c)];
}
inline constexpr bool InClass(char c, uint8_t mask) {
  return (ClassOf(c) & mask) != 0;
}

// --- Scans -----------------------------------------------------------------
//
// All return an index into `s` (>= from), or std::string_view::npos when
// no byte qualifies. `from` past the end is allowed and returns npos.

// First byte in any class of `mask` (table-driven; every tier).
size_t FindClass(std::string_view s, uint8_t mask, size_t from = 0);

// Dedicated kernels for the hot classes (same result as FindClass with
// the matching mask, but with SWAR/SIMD fast paths):
size_t FindNewline(std::string_view s, size_t from = 0);  // kNewline
size_t FindSpace(std::string_view s, size_t from = 0);    // kSpace
size_t SkipSpace(std::string_view s, size_t from = 0);    // first NON-space
size_t FindJsonEscape(std::string_view s, size_t from = 0);  // kJsonEscape
size_t FindSepTrigger(std::string_view s, size_t from = 0);  // kSepTrigger

// True if any byte is ASCII alphanumeric (== FindClass(s, kAlnum) != npos).
bool HasAlnum(std::string_view s);

// True if non-empty and every byte is an ASCII digit.
bool AllDigits(std::string_view s);

// ASCII-lowercases n bytes from `in` into `out` (in == out is fine;
// other overlaps are not). Bytes outside A-Z are copied untouched.
void AsciiLower(const char* in, size_t n, char* out);

}  // namespace whoiscrf::util::scan
