#include "util/env.h"

#include <cstdlib>

namespace whoiscrf::util {

double ScaleFactor() {
  const char* env = std::getenv("WHOISCRF_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || v <= 0.0) return 1.0;
  return v;
}

bool BenchSmoke() {
  const char* env = std::getenv("WHOISCRF_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

size_t Scaled(size_t base, size_t min_value) {
  if (BenchSmoke()) {
    const size_t v = min_value / 5;
    return v < 8 ? 8 : (v > 200 ? 200 : v);
  }
  const double scaled = static_cast<double>(base) * ScaleFactor();
  const auto v = static_cast<size_t>(scaled);
  return v < min_value ? min_value : v;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env) return fallback;
  return v;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::string(env);
}

}  // namespace whoiscrf::util
