#include "util/chunk_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <stdexcept>

namespace whoiscrf::util {

FileByteSource::FileByteSource(const std::string& path, size_t chunk_bytes)
    : chunk_bytes_(std::max<size_t>(1, chunk_bytes)) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) throw std::runtime_error("cannot open " + path);

  // Map regular, non-empty files; everything else (pipes, devices, empty
  // files — mmap of length 0 is an error) takes the read(2) path.
  struct stat st {};
  if (::fstat(fd_, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd_, 0);
    if (map != MAP_FAILED) {
      map_ = static_cast<const char*>(map);
      map_size_ = static_cast<size_t>(st.st_size);
      ::madvise(map, map_size_, MADV_SEQUENTIAL);
    }
  }
  if (map_ == nullptr) buffer_.resize(chunk_bytes_);
}

FileByteSource::~FileByteSource() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), map_size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

std::string_view FileByteSource::Next() {
  if (map_ != nullptr) {
    // Drop consumed pages (everything before the chunk being handed out —
    // older views are invalid by contract). Without this, a sequential
    // scan keeps every touched page resident and "bounded-memory" parsing
    // shows RSS growing by the full file size; MADV_DONTNEED on a clean
    // read-only file mapping just re-faults from page cache if re-read.
    const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
    const size_t keep_from = pos_ - (pos_ % page);
    if (keep_from > released_) {
      ::madvise(const_cast<char*>(map_ + released_), keep_from - released_,
                MADV_DONTNEED);
      released_ = keep_from;
    }
    const size_t n = std::min(chunk_bytes_, map_size_ - pos_);
    const std::string_view chunk(map_ + pos_, n);
    pos_ += n;
    return chunk;
  }
  size_t filled = 0;
  while (filled < buffer_.size()) {
    const ssize_t n =
        ::read(fd_, buffer_.data() + filled, buffer_.size() - filled);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) break;
    filled += static_cast<size_t>(n);
  }
  return {buffer_.data(), filled};
}

StreamByteSource::StreamByteSource(std::istream& is, size_t chunk_bytes)
    : is_(is), buffer_(std::max<size_t>(1, chunk_bytes)) {}

std::string_view StreamByteSource::Next() {
  is_.read(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  return {buffer_.data(), static_cast<size_t>(is_.gcount())};
}

MemoryByteSource::MemoryByteSource(std::string_view data, size_t chunk_bytes)
    : data_(data), chunk_bytes_(std::max<size_t>(1, chunk_bytes)) {}

std::string_view MemoryByteSource::Next() {
  const size_t n = std::min(chunk_bytes_, data_.size() - pos_);
  const std::string_view chunk = data_.substr(pos_, n);
  pos_ += n;
  return chunk;
}

}  // namespace whoiscrf::util
