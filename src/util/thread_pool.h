// Fixed-size thread pool used to parallelize per-sequence gradient
// computation during CRF training (the paper notes a parallel L-BFGS
// implementation) and bulk parsing in the survey pipeline.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace whoiscrf::util {

class ThreadPool {
 public:
  // `num_threads == 0` selects the hardware concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Runs fn(i) for each i in [0, n), distributing contiguous chunks across
  // the pool, and blocks until every call returns. Exceptions thrown by fn
  // propagate to the caller (the first one observed).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Runs fn(chunk_begin, chunk_end, chunk_index) over a partition of [0, n)
  // into exactly min(n, size()) chunks. Useful when each worker accumulates
  // into a per-chunk buffer.
  void ParallelChunks(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& fn);

  // Enqueues one task for any worker to run, fire-and-forget (no wait
  // handle; the destructor still drains queued tasks before joining).
  // Long-running service loops (src/serve posts one pop-loop per worker)
  // use this; ParallelFor/ParallelChunks remain the fork-join interface.
  void Post(std::function<void()> task) { Submit(std::move(task)); }

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace whoiscrf::util
