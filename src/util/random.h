// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (corpus generation, training-data
// subsampling, SGD shuffling) draw from Rng so that every experiment is
// reproducible from a single seed. The generator is SplitMix64-seeded
// xoshiro256**, which is fast, high-quality, and fully portable — unlike
// std::default_random_engine, whose sequence is implementation-defined.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace whoiscrf::util {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Gaussian via Box–Muller (mean 0, stddev 1).
  double Gaussian();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Index drawn from the (unnormalized, non-negative) weights.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(std::span<const double> weights);

  // Zipf-like rank draw over [0, n): probability proportional to
  // 1/(rank+1)^alpha. Used for long-tailed registrar/registrant populations.
  size_t Zipf(size_t n, double alpha);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Picks a uniformly random element. Requires non-empty input.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::Pick: empty vector");
    return v[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

  // Derives an independent child generator; `salt` decorrelates children
  // created from the same parent state.
  Rng Fork(uint64_t salt);

 private:
  uint64_t s_[4];
};

}  // namespace whoiscrf::util
