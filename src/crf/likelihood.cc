#include "crf/likelihood.h"

#include <stdexcept>

#include "crf/inference.h"
#include "crf/workspace.h"

namespace whoiscrf::crf {

LogLikelihood::LogLikelihood(CrfModel& model, const Dataset& data,
                             double l2_sigma, util::ThreadPool* pool)
    : model_(model), data_(data), l2_sigma_(l2_sigma), pool_(pool) {
  if (data_.sequences.size() != data_.labels.size()) {
    throw std::invalid_argument("LogLikelihood: dataset size mismatch");
  }
  for (size_t r = 0; r < data_.size(); ++r) {
    if (data_.sequences[r].size() != data_.labels[r].size()) {
      throw std::invalid_argument(
          "LogLikelihood: sequence/label length mismatch");
    }
  }
}

void LogLikelihood::AccumulateSequence(size_t index, Workspace& ws,
                                       std::vector<double>& grad,
                                       double& nll) const {
  const CompiledSequence& seq = data_.sequences[index];
  const std::vector<int>& gold = data_.labels[index];
  if (seq.empty()) return;

  model_.ComputeScores(seq, ws.scores);
  const CrfModel::Scores& scores = ws.scores;
  const Posteriors& post = ForwardBackward(scores, ws, /*with_edges=*/true);
  const int L = scores.L;

  // NLL contribution: log Z - theta . f(gold).
  double gold_score = 0.0;
  for (size_t t = 0; t < seq.size(); ++t) {
    gold_score += scores.unary[t * static_cast<size_t>(L) +
                               static_cast<size_t>(gold[t])];
    if (t >= 1) {
      gold_score += scores.pairwise[t * static_cast<size_t>(L * L) +
                                    static_cast<size_t>(gold[t - 1]) * L +
                                    static_cast<size_t>(gold[t])];
    }
  }
  nll += post.log_z - gold_score;

  // Gradient: expected counts minus empirical counts, per feature.
  for (size_t t = 0; t < seq.size(); ++t) {
    const double* node_t = &post.node[t * static_cast<size_t>(L)];
    for (int attr : seq[t].attrs) {
      double* w = &grad[model_.UnigramIndex(attr, 0)];
      for (int j = 0; j < L; ++j) w[j] += node_t[j];
      grad[model_.UnigramIndex(attr, gold[t])] -= 1.0;
    }
    if (t == 0) continue;
    const double* edge_t = &post.edge[t * static_cast<size_t>(L * L)];
    {
      double* w = &grad[model_.TransitionIndex(0, 0)];
      for (int ij = 0; ij < L * L; ++ij) w[ij] += edge_t[ij];
      grad[model_.TransitionIndex(gold[t - 1], gold[t])] -= 1.0;
    }
    for (int slot : seq[t].trans_slots) {
      double* w = &grad[model_.ObservedTransitionIndex(slot, 0, 0)];
      for (int ij = 0; ij < L * L; ++ij) w[ij] += edge_t[ij];
      grad[model_.ObservedTransitionIndex(slot, gold[t - 1], gold[t])] -= 1.0;
    }
  }
}

double LogLikelihood::Evaluate(const std::vector<double>& w,
                               std::vector<double>& grad) {
  if (w.size() != model_.num_weights()) {
    throw std::invalid_argument("LogLikelihood::Evaluate: bad weight size");
  }
  model_.weights() = w;
  grad.assign(w.size(), 0.0);
  double nll = 0.0;

  if (pool_ == nullptr || pool_->size() <= 1 || data_.size() < 2) {
    Workspace ws;
    for (size_t r = 0; r < data_.size(); ++r) {
      AccumulateSequence(r, ws, grad, nll);
    }
  } else {
    const size_t chunks = std::min(data_.size(), pool_->size());
    std::vector<std::vector<double>> chunk_grads(
        chunks, std::vector<double>(w.size(), 0.0));
    std::vector<double> chunk_nll(chunks, 0.0);
    std::vector<Workspace> chunk_ws(chunks);
    pool_->ParallelChunks(data_.size(),
                          [&](size_t begin, size_t end, size_t chunk) {
                            for (size_t r = begin; r < end; ++r) {
                              AccumulateSequence(r, chunk_ws[chunk],
                                                 chunk_grads[chunk],
                                                 chunk_nll[chunk]);
                            }
                          });
    for (size_t c = 0; c < chunks; ++c) {
      nll += chunk_nll[c];
      const std::vector<double>& cg = chunk_grads[c];
      for (size_t k = 0; k < grad.size(); ++k) grad[k] += cg[k];
    }
  }

  if (l2_sigma_ > 0.0) {
    const double inv_var = 1.0 / (l2_sigma_ * l2_sigma_);
    double penalty = 0.0;
    for (size_t k = 0; k < w.size(); ++k) {
      penalty += w[k] * w[k];
      grad[k] += w[k] * inv_var;
    }
    nll += 0.5 * penalty * inv_var;
  }
  return nll;
}

}  // namespace whoiscrf::crf
