// CrfModel: the parameterized linear-chain CRF (paper §3.1–§3.3).
//
// Feature space layout (all binary features, eq. 1):
//   * unigram features  f(y_t = j, attr a in x_t)          — eq. 6/7 form
//   * transition features f(y_{t-1} = i, y_t = j)           — label bigrams
//   * observed transitions f(y_{t-1}=i, y_t=j, attr a in x_t)
//     for transition-eligible attributes only               — eq. 8 form
//
// Weights are stored in one flat vector:
//   [ A*L unigram | L*L transition | S*L*L observed-transition ]
// where A = vocabulary size, L = number of labels, S = number of
// transition-eligible attribute slots. Unigram features are generated for
// every (attribute x label) pair, as in CRF++; with the paper's dictionary
// of tens of thousands of words this yields feature counts of the same
// order as the paper's ("nearly 1M features" for the first-level CRF).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "crf/sequence.h"
#include "text/vocabulary.h"

namespace whoiscrf::text {
class Tokenizer;
struct Line;
}  // namespace whoiscrf::text

namespace whoiscrf::crf {

struct Workspace;  // crf/workspace.h

class CrfModel {
 public:
  CrfModel() = default;

  // Constructs an empty (zero-weight) model over the given label names,
  // frozen vocabulary, and transition-eligible attribute ids.
  CrfModel(std::vector<std::string> label_names, text::Vocabulary vocab,
           std::vector<int> transition_attr_ids);

  int num_labels() const { return static_cast<int>(label_names_.size()); }
  const std::vector<std::string>& label_names() const { return label_names_; }
  const text::Vocabulary& vocab() const { return vocab_; }
  size_t num_weights() const { return weights_.size(); }
  size_t num_transition_slots() const { return slot_attrs_.size(); }

  std::vector<double>& weights() { return weights_; }
  const std::vector<double>& weights() const { return weights_; }

  // --- Feature indexing -----------------------------------------------
  size_t UnigramIndex(int attr_id, int label) const;
  size_t TransitionIndex(int prev_label, int label) const;
  size_t ObservedTransitionIndex(int slot, int prev_label, int label) const;

  // Vocabulary attribute id backing a transition slot.
  int SlotAttr(int slot) const { return slot_attrs_[static_cast<size_t>(slot)]; }

  // Transition slot of an interned attribute id, or -1 if the attribute
  // has no observed-transition block. Lets callers precompute combined
  // attr -> (id, slot) tables instead of probing per line.
  int TransSlot(int attr_id) const;

  // --- Compilation ------------------------------------------------------
  // Interns per-line attributes against the model's vocabulary. Unknown
  // attributes are dropped (they have no weights); transition-eligible
  // attributes map to slots when registered.
  CompiledSequence Compile(
      const std::vector<text::LineAttributes>& lines) const;

  // Fused tokenize+compile fast path: runs the tokenizer's streaming
  // extraction over `lines` and interns attributes straight to ids via the
  // transparent-hash Vocabulary::Lookup — no intermediate LineAttributes,
  // no string materialization beyond the workspace scratch. Fills `ws.seq`
  // (reusing its storage) with exactly what
  // Compile(tokenizer.Extract(each line)) would produce.
  void CompileInto(const text::Tokenizer& tokenizer,
                   std::span<const text::Line> lines, Workspace& ws) const;

  // Same, over a subset of lines given by pointer (the level-2 pass tags a
  // scattered subset of the record's lines).
  void CompileInto(const text::Tokenizer& tokenizer,
                   std::span<const text::Line* const> lines,
                   Workspace& ws) const;

  // Compiles ONE line against several models in a single tokenization pass
  // (the expensive part — word normalization and classification — runs
  // once; each model interns the same attribute stream against its own
  // vocabulary). items[k] receives exactly what models[k]'s CompileInto
  // would produce for this line. Backs the per-line compile cache of the
  // two-level WHOIS parser.
  static void CompileLineMulti(const text::Tokenizer& tokenizer,
                               const text::Line& line,
                               std::span<const CrfModel* const> models,
                               std::span<CompiledItem* const> items,
                               text::TokenScratch& scratch);

  // --- Scoring ----------------------------------------------------------
  // Log-potentials for a compiled sequence:
  //   unary[t*L + j]            = sum of unigram weights at t for label j
  //   pairwise[t*L*L + i*L + j] = transition + observed-transition weights
  //                               (defined for t >= 1)
  // These are the log M_t matrices of the appendix (eq. 9), split so the
  // unary part is reusable by both inference and Viterbi.
  struct Scores {
    int T = 0;
    int L = 0;
    std::vector<double> unary;     // T*L
    std::vector<double> pairwise;  // T*L*L, row t=0 unused
    // Optional row indirection: when non-empty, pair_rows[t] points at the
    // L*L pairwise block for position t and `pairwise` is just backing
    // storage for the rows that needed computing. Lines without observed-
    // transition attributes share the model's base transition block through
    // this table instead of each holding a copy — the values read through
    // PairRow are bit-identical either way. ComputeScores clears it (dense
    // layout); the WHOIS fast path fills it.
    std::vector<const double*> pair_rows;

    // The L*L pairwise block for position t >= 1. All inference and
    // decoding reads go through this accessor.
    const double* PairRow(int t) const {
      return pair_rows.empty()
                 ? &pairwise[static_cast<size_t>(t) * L * L]
                 : pair_rows[static_cast<size_t>(t)];
    }
  };
  Scores ComputeScores(const CompiledSequence& seq) const;

  // Allocation-reusing variant: refills `out` in place.
  void ComputeScores(const CompiledSequence& seq, Scores& out) const;

  // Unary score row for one compiled item: out[j] (L doubles) = sum of the
  // item's unigram weights for label j. Accumulates in the same order as
  // ComputeScores, so memoized rows are bit-identical to a fresh run.
  void UnaryScores(const CompiledItem& item, double* out) const;

  // Pairwise score block for one compiled item: out (L*L doubles) =
  // transition weights plus the item's observed-transition matrices. This
  // is the t >= 1 pairwise block of ComputeScores — it depends only on the
  // item, not on the position — accumulated in the same order, so memoized
  // blocks are bit-identical to a fresh run.
  void PairwiseScores(const CompiledItem& item, double* out) const;

  // Label id by name, or -1.
  int LabelId(std::string_view name) const;

  // --- Transition support -----------------------------------------------
  // Label bigrams observed in training: support[i*L + j] != 0 means the
  // transition i -> j occurred in the training labels. Empty means unknown
  // (treat every transition as supported — the state of models saved before
  // format v2). The default decode path never consults this; beam decoding
  // uses it to prune predecessor candidates (viterbi.h DecodeBeam).
  const std::vector<uint8_t>& transition_support() const {
    return transition_support_;
  }
  void set_transition_support(std::vector<uint8_t> support);
  // Convenience for DecodeBeam: data() of the support mask, or nullptr when
  // no support was recorded.
  const uint8_t* transition_support_mask() const {
    return transition_support_.empty() ? nullptr : transition_support_.data();
  }

  // --- Serialization ----------------------------------------------------
  void Save(std::ostream& os) const;
  static CrfModel Load(std::istream& is);
  void SaveFile(const std::string& path) const;
  static CrfModel LoadFile(const std::string& path);

 private:
  // Pairwise log-potentials (transition + observed-transition weights) for
  // t >= 1; shared by both ComputeScores variants.
  void FillPairwise(const CompiledSequence& seq, Scores& s) const;

  std::vector<std::string> label_names_;
  text::Vocabulary vocab_;
  std::unordered_map<int, int> slot_of_attr_;  // attr id -> slot
  std::vector<int> slot_attrs_;                // slot -> attr id
  std::vector<double> weights_;
  std::vector<uint8_t> transition_support_;    // L*L, empty = unknown

  size_t unigram_block_ = 0;     // A*L
  size_t transition_block_ = 0;  // L*L
};

}  // namespace whoiscrf::crf
