// Reusable scratch for CRF inference (the "allocation-free fast path").
//
// Every inference primitive — ComputeScores, Forward/Backward, Viterbi —
// needs O(T*L) .. O(T*L*L) working memory. The classic entry points
// allocate it per call, which is fine for training but dominates the cost
// of tagging millions of small records. A Workspace owns all of those
// buffers; the `*Into`/workspace overloads fill them with `assign`/`clear`
// so capacity is reused and, once the buffers have grown to the largest
// record seen, inference runs with zero heap allocations.
//
// A Workspace is NOT thread-safe: use one per thread (see
// WhoisParser::ParseBatch). It is model-agnostic — the same workspace can
// be reused across models with different L or vocabulary (buffers are
// always resized by the callee).
#pragma once

#include <vector>

#include "crf/inference.h"
#include "crf/model.h"
#include "crf/sequence.h"
#include "crf/tagger.h"
#include "crf/viterbi.h"
#include "text/tokenizer.h"

namespace whoiscrf::crf {

struct Workspace {
  // Fused tokenize+compile output (CrfModel::CompileInto).
  CompiledSequence seq;
  text::TokenScratch token_scratch;

  // Log-potentials (CrfModel::ComputeScores).
  CrfModel::Scores scores;

  // Forward-backward state (inference.h workspace overloads).
  std::vector<double> alpha;  // T*L forward log-sums
  std::vector<double> beta;   // T*L backward log-sums
  std::vector<double> lse;    // L-wide log-sum-exp scratch
  Posteriors post;

  // Viterbi state (viterbi.h workspace overload).
  std::vector<double> viterbi_score;  // T*L best-path scores
  std::vector<int> viterbi_back;      // T*L backpointers
  ViterbiResult viterbi;

  // Beam-Viterbi state (viterbi.h DecodeBeam): the active predecessor set
  // and the candidate list used to select the next one.
  std::vector<int> beam;       // <= beam_width labels, ascending
  std::vector<int> beam_cand;  // L label ids, partially ordered by score

  // Tagger output (tagger.h TagCompiled* methods).
  TagResult tag;
};

}  // namespace whoiscrf::crf
