#include "crf/inference.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "crf/workspace.h"

namespace whoiscrf::crf {

double LogSumExp(const double* v, int n) {
  double max = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    if (v[i] > max) max = v[i];
  }
  if (!std::isfinite(max)) return max;  // all -inf
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += std::exp(v[i] - max);
  return max + std::log(sum);
}

namespace {

// Forward recursion: alpha[t*L+j] = log sum over paths ending in j at t.
// `scratch` is an L-wide log-sum-exp buffer supplied by the caller.
void Forward(const CrfModel::Scores& s, std::vector<double>& alpha,
             std::vector<double>& scratch) {
  const int T = s.T;
  const int L = s.L;
  // resize, not assign: every entry is written below before it is read.
  alpha.resize(static_cast<size_t>(T) * L);
  for (int j = 0; j < L; ++j) alpha[j] = s.unary[j];
  scratch.resize(static_cast<size_t>(L));
  for (int t = 1; t < T; ++t) {
    const double* alpha_prev = &alpha[static_cast<size_t>(t - 1) * L];
    const double* pair_t = s.PairRow(t);
    double* alpha_t = &alpha[static_cast<size_t>(t) * L];
    for (int j = 0; j < L; ++j) {
      for (int i = 0; i < L; ++i) {
        scratch[static_cast<size_t>(i)] = alpha_prev[i] + pair_t[i * L + j];
      }
      alpha_t[j] = s.unary[static_cast<size_t>(t) * L + j] +
                   LogSumExp(scratch.data(), L);
    }
  }
}

// Backward recursion: beta[t*L+i] = log sum over paths continuing from i.
void Backward(const CrfModel::Scores& s, std::vector<double>& beta,
              std::vector<double>& scratch) {
  const int T = s.T;
  const int L = s.L;
  beta.assign(static_cast<size_t>(T) * L, 0.0);
  scratch.assign(static_cast<size_t>(L), 0.0);
  for (int t = T - 2; t >= 0; --t) {
    const double* beta_next = &beta[static_cast<size_t>(t + 1) * L];
    const double* pair_next = s.PairRow(t + 1);
    double* beta_t = &beta[static_cast<size_t>(t) * L];
    for (int i = 0; i < L; ++i) {
      for (int j = 0; j < L; ++j) {
        scratch[static_cast<size_t>(j)] =
            pair_next[i * L + j] +
            s.unary[static_cast<size_t>(t + 1) * L + j] + beta_next[j];
      }
      beta_t[i] = LogSumExp(scratch.data(), L);
    }
  }
}

}  // namespace

double LogPartition(const CrfModel::Scores& scores) {
  Workspace ws;
  return LogPartition(scores, ws);
}

double LogPartition(const CrfModel::Scores& scores, Workspace& ws) {
  if (scores.T <= 0) throw std::invalid_argument("LogPartition: empty");
  Forward(scores, ws.alpha, ws.lse);
  return LogSumExp(&ws.alpha[static_cast<size_t>(scores.T - 1) * scores.L],
                   scores.L);
}

Posteriors ForwardBackward(const CrfModel::Scores& s) {
  Workspace ws;
  ForwardBackward(s, ws, /*with_edges=*/true);
  return std::move(ws.post);
}

const Posteriors& ForwardBackward(const CrfModel::Scores& s, Workspace& ws,
                                  bool with_edges) {
  if (s.T <= 0) throw std::invalid_argument("ForwardBackward: empty");
  const int T = s.T;
  const int L = s.L;

  Forward(s, ws.alpha, ws.lse);
  Backward(s, ws.beta, ws.lse);
  const std::vector<double>& alpha = ws.alpha;
  const std::vector<double>& beta = ws.beta;

  Posteriors& p = ws.post;
  p.T = T;
  p.L = L;
  p.log_z = LogSumExp(&alpha[static_cast<size_t>(T - 1) * L], L);
  p.node.assign(static_cast<size_t>(T) * L, 0.0);
  if (with_edges) {
    p.edge.assign(static_cast<size_t>(T) * L * L, 0.0);
  } else {
    p.edge.clear();
  }

  for (int t = 0; t < T; ++t) {
    for (int j = 0; j < L; ++j) {
      const size_t idx = static_cast<size_t>(t) * L + j;
      p.node[idx] = std::exp(alpha[idx] + beta[idx] - p.log_z);
    }
  }
  if (!with_edges) return p;
  for (int t = 1; t < T; ++t) {
    const double* alpha_prev = &alpha[static_cast<size_t>(t - 1) * L];
    const double* beta_t = &beta[static_cast<size_t>(t) * L];
    const double* pair_t = s.PairRow(t);
    double* edge_t = &p.edge[static_cast<size_t>(t) * L * L];
    for (int i = 0; i < L; ++i) {
      for (int j = 0; j < L; ++j) {
        edge_t[i * L + j] = std::exp(
            alpha_prev[i] + pair_t[i * L + j] +
            s.unary[static_cast<size_t>(t) * L + j] + beta_t[j] - p.log_z);
      }
    }
  }
  return p;
}

double SequenceLogProb(const CrfModel::Scores& s,
                       const std::vector<int>& labels) {
  if (static_cast<int>(labels.size()) != s.T) {
    throw std::invalid_argument("SequenceLogProb: label length mismatch");
  }
  double score = 0.0;
  for (int t = 0; t < s.T; ++t) {
    score += s.unary[static_cast<size_t>(t) * s.L + labels[static_cast<size_t>(t)]];
    if (t >= 1) {
      score += s.PairRow(t)[labels[static_cast<size_t>(t - 1)] * s.L +
                            labels[static_cast<size_t>(t)]];
    }
  }
  return score - LogPartition(s);
}

double LogPartitionBruteForce(const CrfModel::Scores& s) {
  if (s.T <= 0) throw std::invalid_argument("BruteForce: empty");
  const int T = s.T;
  const int L = s.L;
  double total = -std::numeric_limits<double>::infinity();
  std::vector<int> labels(static_cast<size_t>(T), 0);
  while (true) {
    double score = 0.0;
    for (int t = 0; t < T; ++t) {
      score += s.unary[static_cast<size_t>(t) * L + labels[static_cast<size_t>(t)]];
      if (t >= 1) {
        score += s.PairRow(t)[labels[static_cast<size_t>(t - 1)] * L +
                              labels[static_cast<size_t>(t)]];
      }
    }
    // total = logaddexp(total, score)
    if (score > total) {
      total = std::isfinite(total)
                  ? score + std::log1p(std::exp(total - score))
                  : score;
    } else {
      total = total + std::log1p(std::exp(score - total));
    }
    // Odometer increment over label assignments.
    int pos = 0;
    while (pos < T) {
      if (++labels[static_cast<size_t>(pos)] < L) break;
      labels[static_cast<size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == T) break;
  }
  return total;
}

}  // namespace whoiscrf::crf
