// The training objective: negative conditional log-likelihood (negated
// eq. 4) with an L2 (Gaussian prior) penalty, and its exact analytic
// gradient via the forward-backward marginals (appendix, eq. 12).
//
// The gradient of the log-likelihood with respect to theta_k is the
// difference between empirical and expected feature counts; sequences are
// independent given theta, so the per-sequence terms are computed in
// parallel (the paper notes running a parallelized L-BFGS).
#pragma once

#include <vector>

#include "crf/model.h"
#include "util/thread_pool.h"

namespace whoiscrf::crf {

struct Workspace;  // crf/workspace.h

// A compiled training set: interned sequences with gold labels.
struct Dataset {
  std::vector<CompiledSequence> sequences;
  std::vector<std::vector<int>> labels;

  size_t size() const { return sequences.size(); }
};

class LogLikelihood {
 public:
  // `model` provides the feature space; its weights are overwritten on each
  // Evaluate call. `l2_sigma` is the prior's standard deviation; the
  // penalty added to the NLL is ||w||^2 / (2 sigma^2). Pass sigma <= 0 to
  // disable regularization. `pool` may be null for single-threaded
  // evaluation.
  LogLikelihood(CrfModel& model, const Dataset& data, double l2_sigma,
                util::ThreadPool* pool = nullptr);

  // Computes the penalized NLL at `w` and writes its gradient into `grad`
  // (resized to w.size()).
  double Evaluate(const std::vector<double>& w, std::vector<double>& grad);

  size_t num_parameters() const { return model_.num_weights(); }

 private:
  // Adds one sequence's NLL contribution to *nll and its gradient to grad,
  // running all inference in `ws` (one workspace per worker thread).
  void AccumulateSequence(size_t index, Workspace& ws,
                          std::vector<double>& grad, double& nll) const;

  CrfModel& model_;
  const Dataset& data_;
  double l2_sigma_;
  util::ThreadPool* pool_;
};

}  // namespace whoiscrf::crf
