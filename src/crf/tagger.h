// Tagger: applies a trained CRF to unlabeled sequences (eq. 5, Viterbi
// decoding), optionally with per-line marginal confidences.
#pragma once

#include <vector>

#include "crf/model.h"

namespace whoiscrf::crf {

struct Workspace;  // crf/workspace.h

struct TagResult {
  std::vector<int> labels;          // Viterbi path
  std::vector<double> confidences;  // Pr(y_t = labels[t] | x), per line
  double sequence_log_prob = 0.0;   // log Pr(labels | x)
};

class Tagger {
 public:
  explicit Tagger(const CrfModel& model) : model_(model) {}

  // Most likely label per line. Empty input yields an empty result.
  std::vector<int> Tag(const std::vector<text::LineAttributes>& lines) const;

  // Viterbi path plus marginal confidence of each chosen label and the
  // normalized log-probability of the whole path.
  TagResult TagWithConfidence(
      const std::vector<text::LineAttributes>& lines) const;

  // Posterior (max-marginal) decoding: picks argmax_j Pr(y_t = j | x) per
  // line. Minimizes expected per-line error rather than whole-sequence
  // error — it can differ from Viterbi on ambiguous lines and may produce
  // label sequences no single path would. Useful when the line error rate
  // (Figure 2's metric) is what matters.
  TagResult TagPosterior(
      const std::vector<text::LineAttributes>& lines) const;

  // --- Workspace fast path ---------------------------------------------
  // All three operate on `ws.seq`, which the caller fills first via
  // CrfModel::CompileInto (with this tagger's model), and allocate nothing
  // once the workspace has warmed up.

  // Viterbi labels only (what Tag returns). Returns `ws.viterbi.labels`.
  const std::vector<int>& TagCompiledLabels(Workspace& ws) const;

  // Viterbi labels plus the normalized log-probability of the path, via a
  // forward-only log-partition — no backward pass, no marginals.
  // `labels` and `sequence_log_prob` are bit-identical to
  // TagWithConfidence's; `confidences` is left empty. Returns `ws.tag`.
  const TagResult& TagCompiledViterbi(Workspace& ws) const;

  // Full TagWithConfidence equivalent (labels, per-line marginal
  // confidences, sequence log-prob). Returns `ws.tag`.
  const TagResult& TagCompiled(Workspace& ws) const;

  const CrfModel& model() const { return model_; }

 private:
  const CrfModel& model_;
};

}  // namespace whoiscrf::crf
