// Tagger: applies a trained CRF to unlabeled sequences (eq. 5, Viterbi
// decoding), optionally with per-line marginal confidences.
#pragma once

#include <vector>

#include "crf/model.h"

namespace whoiscrf::crf {

struct TagResult {
  std::vector<int> labels;          // Viterbi path
  std::vector<double> confidences;  // Pr(y_t = labels[t] | x), per line
  double sequence_log_prob = 0.0;   // log Pr(labels | x)
};

class Tagger {
 public:
  explicit Tagger(const CrfModel& model) : model_(model) {}

  // Most likely label per line. Empty input yields an empty result.
  std::vector<int> Tag(const std::vector<text::LineAttributes>& lines) const;

  // Viterbi path plus marginal confidence of each chosen label and the
  // normalized log-probability of the whole path.
  TagResult TagWithConfidence(
      const std::vector<text::LineAttributes>& lines) const;

  // Posterior (max-marginal) decoding: picks argmax_j Pr(y_t = j | x) per
  // line. Minimizes expected per-line error rather than whole-sequence
  // error — it can differ from Viterbi on ambiguous lines and may produce
  // label sequences no single path would. Useful when the line error rate
  // (Figure 2's metric) is what matters.
  TagResult TagPosterior(
      const std::vector<text::LineAttributes>& lines) const;

  const CrfModel& model() const { return model_; }

 private:
  const CrfModel& model_;
};

}  // namespace whoiscrf::crf
