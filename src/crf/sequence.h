// Sequence types shared across the CRF layer.
//
// The CRF is generic over string attributes: the text layer produces
// LineAttributes per line; the trainer interns them against a Vocabulary to
// obtain CompiledItems; inference operates on compiled sequences only.
#pragma once

#include <vector>

#include "text/tokenizer.h"

namespace whoiscrf::crf {

// One labeled training sequence: attributes plus gold labels, same length.
struct Instance {
  std::vector<text::LineAttributes> lines;
  std::vector<int> labels;
};

// One line after interning: dense attribute ids.
struct CompiledItem {
  // Vocabulary ids of this line's attributes (unknown attributes dropped).
  std::vector<int> attrs;
  // Slot ids of this line's transition-eligible attributes (eq. 8 features).
  std::vector<int> trans_slots;
};

using CompiledSequence = std::vector<CompiledItem>;

}  // namespace whoiscrf::crf
