// Viterbi decoding (paper eqs. 13-17): the most likely label sequence under
// the model, computed by dynamic programming with backtracking in O(L^2 T).
#pragma once

#include <vector>

#include "crf/model.h"

namespace whoiscrf::crf {

struct Workspace;  // crf/workspace.h

struct ViterbiResult {
  std::vector<int> labels;  // argmax path, length T
  double score = 0.0;       // unnormalized log-score of the path (eq. 13 sum)
};

// Decodes the best path for the given log-potentials. Requires scores.T >= 1.
ViterbiResult Decode(const CrfModel::Scores& scores);

// Workspace variant: DP tables and the result live in `ws`
// (viterbi_score/viterbi_back/viterbi), so repeated decoding allocates
// nothing once the workspace has warmed up. Returns `ws.viterbi`.
const ViterbiResult& Decode(const CrfModel::Scores& scores, Workspace& ws);

// Brute-force argmax over all L^T paths, for validating Decode in tests.
ViterbiResult DecodeBruteForce(const CrfModel::Scores& scores);

}  // namespace whoiscrf::crf
