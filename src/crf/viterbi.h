// Viterbi decoding (paper eqs. 13-17): the most likely label sequence under
// the model, computed by dynamic programming with backtracking in O(L^2 T).
#pragma once

#include <cstdint>
#include <vector>

#include "crf/model.h"

namespace whoiscrf::crf {

struct Workspace;  // crf/workspace.h

struct ViterbiResult {
  std::vector<int> labels;  // argmax path, length T
  double score = 0.0;       // unnormalized log-score of the path (eq. 13 sum)
};

// Decodes the best path for the given log-potentials. Requires scores.T >= 1.
ViterbiResult Decode(const CrfModel::Scores& scores);

// Workspace variant: DP tables and the result live in `ws`
// (viterbi_score/viterbi_back/viterbi), so repeated decoding allocates
// nothing once the workspace has warmed up. Returns `ws.viterbi`.
const ViterbiResult& Decode(const CrfModel::Scores& scores, Workspace& ws);

// Beam-pruned Viterbi: at each step only the `beam_width` highest-scoring
// predecessor states extend paths, so the inner loop costs O(K*L) instead
// of O(L^2). With `support` (an L*L mask of label bigrams observed in
// training, CrfModel::transition_support_mask()) unsupported transitions
// are additionally skipped; a state whose supported predecessors are all
// outside the beam falls back to the unpruned beam so every label keeps a
// well-defined score and backtracking never dead-ends.
//
// Exactness: with beam_width >= L and support == nullptr this performs the
// same comparisons in the same order as Decode and returns bit-identical
// labels and score. Narrower beams (or support pruning) trade exactness
// for speed; bench_parse_throughput measures the label-agreement delta.
ViterbiResult DecodeBeam(const CrfModel::Scores& scores, int beam_width,
                         const uint8_t* support = nullptr);

// Workspace variant (DP tables, beam lists, and the result live in `ws`).
const ViterbiResult& DecodeBeam(const CrfModel::Scores& scores,
                                int beam_width, Workspace& ws,
                                const uint8_t* support = nullptr);

// Brute-force argmax over all L^T paths, for validating Decode in tests.
ViterbiResult DecodeBruteForce(const CrfModel::Scores& scores);

}  // namespace whoiscrf::crf
