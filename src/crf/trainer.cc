#include "crf/trainer.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace whoiscrf::crf {

namespace {

// Registry handles for the training metrics (whoiscrf_train_*; see
// docs/observability.md). Resolved once per process — training is far from
// any hot path, but there is no reason to re-probe the registry per
// iteration either.
struct TrainMetrics {
  obs::Gauge* nll;
  obs::Gauge* grad_inf_norm;
  obs::Counter* iterations;
  obs::Counter* objective_evals;
  obs::Histogram* iteration_seconds;
};

const TrainMetrics& GetTrainMetrics() {
  static const TrainMetrics metrics = [] {
    auto& reg = obs::Registry::Global();
    TrainMetrics m;
    m.nll = reg.GetGauge("whoiscrf_train_nll",
                          "Regularized negative log-likelihood after the "
                          "most recent optimizer iteration");
    m.grad_inf_norm =
        reg.GetGauge("whoiscrf_train_grad_inf_norm",
                      "Infinity norm of the objective gradient after the "
                      "most recent L-BFGS iteration");
    m.iterations = reg.GetCounter(
        "whoiscrf_train_iterations_total",
        "Optimizer iterations (L-BFGS) or epochs (SGD) completed");
    m.objective_evals = reg.GetCounter(
        "whoiscrf_train_objective_evals_total",
        "Objective/gradient evaluations, including line-search probes");
    m.iteration_seconds = reg.GetHistogram(
        "whoiscrf_train_iteration_seconds",
        "Wall time of one accepted L-BFGS iteration",
        {0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30});
    return m;
  }();
  return metrics;
}

// Label bigrams occurring in the training labels, as an L*L presence mask.
// Stored on the model (and serialized, format v2) so pruned decoding can
// restrict predecessor candidates to transitions the data actually exhibits.
std::vector<uint8_t> ObservedTransitionSupport(
    size_t num_labels, const std::vector<Instance>& data) {
  std::vector<uint8_t> support(num_labels * num_labels, 0);
  for (const Instance& inst : data) {
    for (size_t t = 1; t < inst.labels.size(); ++t) {
      support[static_cast<size_t>(inst.labels[t - 1]) * num_labels +
              static_cast<size_t>(inst.labels[t])] = 1;
    }
  }
  return support;
}

}  // namespace

Trainer::Trainer(TrainerOptions options) : options_(options) {}

CrfModel Trainer::BuildModel(const std::vector<std::string>& label_names,
                             const std::vector<Instance>& data) const {
  text::Vocabulary vocab;
  for (const Instance& inst : data) {
    if (inst.lines.size() != inst.labels.size()) {
      throw std::invalid_argument("Trainer: instance length mismatch");
    }
    for (int label : inst.labels) {
      if (label < 0 || static_cast<size_t>(label) >= label_names.size()) {
        throw std::invalid_argument("Trainer: label out of range");
      }
    }
    for (const auto& line : inst.lines) {
      for (const auto& attr : line.attrs) vocab.Count(attr);
    }
  }
  vocab.Freeze(options_.min_attr_count);

  // Transition slots: every retained attribute that appears with the
  // transition flag anywhere in the training data.
  std::unordered_set<int> slot_set;
  if (!options_.use_observed_transitions) {
    return CrfModel(label_names, std::move(vocab), {});
  }
  for (const Instance& inst : data) {
    for (const auto& line : inst.lines) {
      for (size_t i = 0; i < line.attrs.size(); ++i) {
        if (!line.transition[i]) continue;
        const int id = vocab.Lookup(line.attrs[i]);
        if (id != text::Vocabulary::kNotFound) slot_set.insert(id);
      }
    }
  }
  std::vector<int> slots(slot_set.begin(), slot_set.end());
  std::sort(slots.begin(), slots.end());
  return CrfModel(label_names, std::move(vocab), std::move(slots));
}

Dataset Trainer::Compile(const CrfModel& model,
                         const std::vector<Instance>& data) {
  Dataset out;
  out.sequences.reserve(data.size());
  out.labels.reserve(data.size());
  for (const Instance& inst : data) {
    out.sequences.push_back(model.Compile(inst.lines));
    out.labels.push_back(inst.labels);
  }
  return out;
}

void Trainer::Optimize(CrfModel& model, const Dataset& dataset,
                       TrainStats* stats) const {
  const TrainMetrics& metrics = GetTrainMetrics();
  obs::ScopedSpan train_span("crf.optimize");

  if (options_.algorithm == Algorithm::kSgd) {
    SgdOptimizer::Options sgd_options = options_.sgd;
    sgd_options.l2_sigma = options_.l2_sigma;
    sgd_options.verbose = options_.verbose || sgd_options.verbose;
    SgdOptimizer sgd(sgd_options);
    const auto result = sgd.Train(model, dataset);
    metrics.nll->Set(result.final_nll);
    metrics.iterations->Inc(static_cast<uint64_t>(
        result.epochs_run > 0 ? result.epochs_run : 0));
    if (stats != nullptr) {
      stats->final_objective = result.final_nll;
      stats->iterations = result.epochs_run;
    }
    return;
  }

  const size_t threads = options_.threads == 0
                             ? std::thread::hardware_concurrency()
                             : options_.threads;
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1 && dataset.size() > 1) {
    pool = std::make_unique<util::ThreadPool>(threads);
  }
  LogLikelihood objective(model, dataset, options_.l2_sigma, pool.get());

  LbfgsOptimizer::Options lbfgs_options = options_.lbfgs;
  lbfgs_options.verbose = options_.verbose || lbfgs_options.verbose;
  lbfgs_options.on_iteration =
      [&metrics](const LbfgsOptimizer::IterationInfo& info) {
        metrics.nll->Set(info.value);
        metrics.grad_inf_norm->Set(info.grad_inf_norm);
        metrics.iterations->Inc();
        metrics.iteration_seconds->Observe(info.seconds);
        auto& tracer = obs::Tracer::Global();
        if (tracer.enabled()) {
          const uint64_t dur_us =
              static_cast<uint64_t>(info.seconds * 1e6);
          const uint64_t now_us = obs::MonotonicMicros();
          tracer.Record("crf.lbfgs_iteration",
                        now_us > dur_us ? now_us - dur_us : 0, dur_us);
        }
      };
  LbfgsOptimizer lbfgs(lbfgs_options);
  std::vector<double> w = model.weights();
  const auto result = lbfgs.Minimize(
      [&objective](const std::vector<double>& x, std::vector<double>& g) {
        return objective.Evaluate(x, g);
      },
      w);
  metrics.objective_evals->Inc(static_cast<uint64_t>(result.evaluations));
  model.weights() = w;
  if (stats != nullptr) {
    stats->final_objective = result.value;
    stats->iterations = result.iterations;
  }
}

CrfModel Trainer::Train(const std::vector<std::string>& label_names,
                        const std::vector<Instance>& data,
                        TrainStats* stats) const {
  if (data.empty()) throw std::invalid_argument("Trainer: no training data");
  CrfModel model = BuildModel(label_names, data);
  const Dataset dataset = Compile(model, data);

  if (stats != nullptr) {
    stats->num_sequences = data.size();
    stats->num_lines = 0;
    for (const auto& inst : data) stats->num_lines += inst.lines.size();
    stats->num_attributes = model.vocab().size();
    stats->num_features = model.num_weights();
    stats->num_transition_slots = model.num_transition_slots();
  }
  LOG_DEBUG("trainer: %zu sequences, %zu attrs, %zu features", data.size(),
            model.vocab().size(), model.num_weights());

  Optimize(model, dataset, stats);
  model.set_transition_support(
      ObservedTransitionSupport(static_cast<size_t>(model.num_labels()), data));
  return model;
}

CrfModel Trainer::Adapt(const CrfModel& base,
                        const std::vector<Instance>& data,
                        TrainStats* stats) const {
  if (data.empty()) throw std::invalid_argument("Trainer: no training data");
  CrfModel model = BuildModel(base.label_names(), data);

  // Warm start: copy weights for every feature the two models share. This
  // makes adaptation with a handful of new examples fast and stable.
  const int L = model.num_labels();
  for (size_t a = 0; a < model.vocab().size(); ++a) {
    const int old_attr = base.vocab().Lookup(model.vocab().Name(static_cast<int>(a)));
    if (old_attr == text::Vocabulary::kNotFound) continue;
    for (int j = 0; j < L; ++j) {
      model.weights()[model.UnigramIndex(static_cast<int>(a), j)] =
          base.weights()[base.UnigramIndex(old_attr, j)];
    }
  }
  for (int i = 0; i < L; ++i) {
    for (int j = 0; j < L; ++j) {
      model.weights()[model.TransitionIndex(i, j)] =
          base.weights()[base.TransitionIndex(i, j)];
    }
  }
  for (size_t s = 0; s < model.num_transition_slots(); ++s) {
    const std::string& attr_name =
        model.vocab().Name(model.SlotAttr(static_cast<int>(s)));
    const int old_attr = base.vocab().Lookup(attr_name);
    if (old_attr == text::Vocabulary::kNotFound) continue;
    // Find the old slot for this attribute, if any.
    int old_slot = -1;
    for (size_t os = 0; os < base.num_transition_slots(); ++os) {
      if (base.SlotAttr(static_cast<int>(os)) == old_attr) {
        old_slot = static_cast<int>(os);
        break;
      }
    }
    if (old_slot < 0) continue;
    for (int i = 0; i < L; ++i) {
      for (int j = 0; j < L; ++j) {
        model.weights()[model.ObservedTransitionIndex(static_cast<int>(s), i, j)] =
            base.weights()[base.ObservedTransitionIndex(old_slot, i, j)];
      }
    }
  }

  const Dataset dataset = Compile(model, data);
  if (stats != nullptr) {
    stats->num_sequences = data.size();
    stats->num_lines = 0;
    for (const auto& inst : data) stats->num_lines += inst.lines.size();
    stats->num_attributes = model.vocab().size();
    stats->num_features = model.num_weights();
    stats->num_transition_slots = model.num_transition_slots();
  }
  Optimize(model, dataset, stats);
  // Adaptation data is typically a handful of records; union its bigrams
  // with the base model's so re-training never *loses* known transitions.
  std::vector<uint8_t> support = ObservedTransitionSupport(
      static_cast<size_t>(model.num_labels()), data);
  if (base.transition_support().size() == support.size()) {
    for (size_t i = 0; i < support.size(); ++i) {
      support[i] = support[i] | base.transition_support()[i];
    }
  }
  model.set_transition_support(std::move(support));
  return model;
}

}  // namespace whoiscrf::crf
