#include "crf/model.h"

#include <fstream>
#include <stdexcept>

#include "crf/workspace.h"
#include "text/tokenizer.h"

namespace whoiscrf::crf {

namespace {

constexpr uint32_t kMagic = 0x57435246;  // "WCRF"
// v2 appends the transition-support mask (observed label bigrams) after the
// weights. v1 streams load fine — they simply carry no support, which reads
// back as "every transition supported".
constexpr uint32_t kVersion = 2;

void WriteU32(std::ostream& os, uint32_t v) {
  unsigned char buf[4] = {
      static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
      static_cast<unsigned char>(v >> 16), static_cast<unsigned char>(v >> 24)};
  os.write(reinterpret_cast<const char*>(buf), 4);
}

uint32_t ReadU32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) throw std::runtime_error("CrfModel::Load: truncated stream");
  return static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
         (static_cast<uint32_t>(buf[2]) << 16) |
         (static_cast<uint32_t>(buf[3]) << 24);
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& is) {
  const uint32_t len = ReadU32(is);
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) throw std::runtime_error("CrfModel::Load: truncated stream");
  return s;
}

}  // namespace

CrfModel::CrfModel(std::vector<std::string> label_names,
                   text::Vocabulary vocab,
                   std::vector<int> transition_attr_ids)
    : label_names_(std::move(label_names)),
      vocab_(std::move(vocab)),
      slot_attrs_(std::move(transition_attr_ids)) {
  if (label_names_.size() < 2) {
    throw std::invalid_argument("CrfModel: need at least two labels");
  }
  if (!vocab_.frozen()) {
    throw std::invalid_argument("CrfModel: vocabulary must be frozen");
  }
  for (size_t s = 0; s < slot_attrs_.size(); ++s) {
    slot_of_attr_.emplace(slot_attrs_[s], static_cast<int>(s));
  }
  const size_t L = label_names_.size();
  unigram_block_ = vocab_.size() * L;
  transition_block_ = L * L;
  weights_.assign(unigram_block_ + transition_block_ +
                      slot_attrs_.size() * L * L,
                  0.0);
}

size_t CrfModel::UnigramIndex(int attr_id, int label) const {
  return static_cast<size_t>(attr_id) * static_cast<size_t>(num_labels()) +
         static_cast<size_t>(label);
}

size_t CrfModel::TransitionIndex(int prev_label, int label) const {
  return unigram_block_ +
         static_cast<size_t>(prev_label) * static_cast<size_t>(num_labels()) +
         static_cast<size_t>(label);
}

size_t CrfModel::ObservedTransitionIndex(int slot, int prev_label,
                                         int label) const {
  const size_t L = static_cast<size_t>(num_labels());
  return unigram_block_ + transition_block_ +
         static_cast<size_t>(slot) * L * L +
         static_cast<size_t>(prev_label) * L + static_cast<size_t>(label);
}

CompiledSequence CrfModel::Compile(
    const std::vector<text::LineAttributes>& lines) const {
  CompiledSequence seq;
  seq.reserve(lines.size());
  for (const auto& line : lines) {
    CompiledItem item;
    item.attrs.reserve(line.attrs.size());
    for (size_t i = 0; i < line.attrs.size(); ++i) {
      const int id = vocab_.Lookup(line.attrs[i]);
      if (id == text::Vocabulary::kNotFound) continue;
      item.attrs.push_back(id);
      if (line.transition[i]) {
        auto it = slot_of_attr_.find(id);
        if (it != slot_of_attr_.end()) item.trans_slots.push_back(it->second);
      }
    }
    seq.push_back(std::move(item));
  }
  return seq;
}

namespace {

// AttrSink that interns attributes straight into one CompiledItem: lookup
// via the transparent-hash vocabulary (no string allocation), drop
// unknowns, dedup by id keeping the first occurrence — exactly the result
// of string-level dedup in Tokenizer::Extract followed by Compile, since
// equal attribute strings intern to equal ids.
class InternSink final : public text::AttrSink {
 public:
  InternSink(const text::Vocabulary& vocab,
             const std::unordered_map<int, int>& slot_of_attr)
      : vocab_(vocab), slot_of_attr_(slot_of_attr) {}

  void BeginItem(CompiledItem& item) {
    item_ = &item;
    item.attrs.clear();
    item.trans_slots.clear();
  }

  void OnAttr(std::string_view attr, bool transition) override {
    const int id = vocab_.Lookup(attr);
    if (id == text::Vocabulary::kNotFound) return;
    for (int existing : item_->attrs) {
      if (existing == id) return;  // first occurrence wins
    }
    item_->attrs.push_back(id);
    if (transition) {
      auto it = slot_of_attr_.find(id);
      if (it != slot_of_attr_.end()) item_->trans_slots.push_back(it->second);
    }
  }

 private:
  const text::Vocabulary& vocab_;
  const std::unordered_map<int, int>& slot_of_attr_;
  CompiledItem* item_ = nullptr;
};

}  // namespace

void CrfModel::CompileInto(const text::Tokenizer& tokenizer,
                           std::span<const text::Line> lines,
                           Workspace& ws) const {
  ws.seq.resize(lines.size());
  InternSink sink(vocab_, slot_of_attr_);
  for (size_t t = 0; t < lines.size(); ++t) {
    sink.BeginItem(ws.seq[t]);
    tokenizer.ExtractTo(lines[t], sink, ws.token_scratch);
  }
}

void CrfModel::CompileInto(const text::Tokenizer& tokenizer,
                           std::span<const text::Line* const> lines,
                           Workspace& ws) const {
  ws.seq.resize(lines.size());
  InternSink sink(vocab_, slot_of_attr_);
  for (size_t t = 0; t < lines.size(); ++t) {
    sink.BeginItem(ws.seq[t]);
    tokenizer.ExtractTo(*lines[t], sink, ws.token_scratch);
  }
}

namespace {

// Fans one attribute stream out to several per-model interning sinks.
class FanoutSink final : public text::AttrSink {
 public:
  explicit FanoutSink(std::vector<InternSink>& sinks) : sinks_(sinks) {}

  void OnAttr(std::string_view attr, bool transition) override {
    for (InternSink& sink : sinks_) sink.OnAttr(attr, transition);
  }

 private:
  std::vector<InternSink>& sinks_;
};

}  // namespace

void CrfModel::CompileLineMulti(const text::Tokenizer& tokenizer,
                                const text::Line& line,
                                std::span<const CrfModel* const> models,
                                std::span<CompiledItem* const> items,
                                text::TokenScratch& scratch) {
  std::vector<InternSink> sinks;
  sinks.reserve(models.size());
  for (size_t k = 0; k < models.size(); ++k) {
    sinks.emplace_back(models[k]->vocab_, models[k]->slot_of_attr_);
    sinks.back().BeginItem(*items[k]);
  }
  FanoutSink fanout(sinks);
  tokenizer.ExtractTo(line, fanout, scratch);
}

CrfModel::Scores CrfModel::ComputeScores(const CompiledSequence& seq) const {
  Scores s;
  ComputeScores(seq, s);
  return s;
}

void CrfModel::ComputeScores(const CompiledSequence& seq, Scores& s) const {
  s.T = static_cast<int>(seq.size());
  s.L = num_labels();
  const size_t L = static_cast<size_t>(s.L);
  s.unary.assign(static_cast<size_t>(s.T) * L, 0.0);
  for (size_t t = 0; t < seq.size(); ++t) {
    UnaryScores(seq[t], &s.unary[t * L]);
  }
  FillPairwise(seq, s);
}

void CrfModel::UnaryScores(const CompiledItem& item, double* out) const {
  const size_t L = static_cast<size_t>(num_labels());
  for (size_t j = 0; j < L; ++j) out[j] = 0.0;
  for (int attr : item.attrs) {
    const double* w = &weights_[UnigramIndex(attr, 0)];
    for (size_t j = 0; j < L; ++j) out[j] += w[j];
  }
}

void CrfModel::PairwiseScores(const CompiledItem& item, double* out) const {
  const size_t L = static_cast<size_t>(num_labels());
  const double* trans = &weights_[TransitionIndex(0, 0)];
  for (size_t ij = 0; ij < L * L; ++ij) out[ij] = trans[ij];
  for (int slot : item.trans_slots) {
    const double* w = &weights_[ObservedTransitionIndex(slot, 0, 0)];
    for (size_t ij = 0; ij < L * L; ++ij) out[ij] += w[ij];
  }
}

void CrfModel::FillPairwise(const CompiledSequence& seq, Scores& s) const {
  const size_t L = static_cast<size_t>(s.L);
  s.pair_rows.clear();  // dense layout: PairRow(t) indexes `pairwise`
  s.pairwise.assign(static_cast<size_t>(s.T) * L * L, 0.0);
  for (size_t t = 1; t < seq.size(); ++t) {
    PairwiseScores(seq[t], &s.pairwise[t * L * L]);
  }
}

int CrfModel::TransSlot(int attr_id) const {
  const auto it = slot_of_attr_.find(attr_id);
  return it != slot_of_attr_.end() ? it->second : -1;
}

void CrfModel::set_transition_support(std::vector<uint8_t> support) {
  const size_t L = static_cast<size_t>(num_labels());
  if (!support.empty() && support.size() != L * L) {
    throw std::invalid_argument("CrfModel: transition support must be L*L");
  }
  transition_support_ = std::move(support);
}

int CrfModel::LabelId(std::string_view name) const {
  for (size_t i = 0; i < label_names_.size(); ++i) {
    if (label_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void CrfModel::Save(std::ostream& os) const {
  WriteU32(os, kMagic);
  WriteU32(os, kVersion);
  WriteU32(os, static_cast<uint32_t>(label_names_.size()));
  for (const auto& name : label_names_) WriteString(os, name);
  vocab_.Save(os);
  WriteU32(os, static_cast<uint32_t>(slot_attrs_.size()));
  for (int attr : slot_attrs_) WriteU32(os, static_cast<uint32_t>(attr));
  WriteU32(os, static_cast<uint32_t>(weights_.size()));
  os.write(reinterpret_cast<const char*>(weights_.data()),
           static_cast<std::streamsize>(weights_.size() * sizeof(double)));
  // v2 trailer: the transition-support mask (possibly empty).
  WriteU32(os, static_cast<uint32_t>(transition_support_.size()));
  os.write(reinterpret_cast<const char*>(transition_support_.data()),
           static_cast<std::streamsize>(transition_support_.size()));
  if (!os) throw std::runtime_error("CrfModel::Save: write failed");
}

CrfModel CrfModel::Load(std::istream& is) {
  if (ReadU32(is) != kMagic) {
    throw std::runtime_error("CrfModel::Load: bad magic");
  }
  const uint32_t version = ReadU32(is);
  if (version < 1 || version > kVersion) {
    throw std::runtime_error("CrfModel::Load: unsupported version");
  }
  const uint32_t num_labels = ReadU32(is);
  std::vector<std::string> labels;
  labels.reserve(num_labels);
  for (uint32_t i = 0; i < num_labels; ++i) labels.push_back(ReadString(is));
  text::Vocabulary vocab = text::Vocabulary::Load(is);
  const uint32_t num_slots = ReadU32(is);
  std::vector<int> slots;
  slots.reserve(num_slots);
  for (uint32_t i = 0; i < num_slots; ++i) {
    slots.push_back(static_cast<int>(ReadU32(is)));
  }
  CrfModel model(std::move(labels), std::move(vocab), std::move(slots));
  const uint32_t num_weights = ReadU32(is);
  if (num_weights != model.weights_.size()) {
    throw std::runtime_error("CrfModel::Load: weight count mismatch");
  }
  is.read(reinterpret_cast<char*>(model.weights_.data()),
          static_cast<std::streamsize>(num_weights * sizeof(double)));
  if (!is) throw std::runtime_error("CrfModel::Load: truncated weights");
  if (version >= 2) {
    const uint32_t support_size = ReadU32(is);
    std::vector<uint8_t> support(support_size);
    if (support_size > 0) {
      is.read(reinterpret_cast<char*>(support.data()),
              static_cast<std::streamsize>(support_size));
      if (!is) throw std::runtime_error("CrfModel::Load: truncated support");
    }
    model.set_transition_support(std::move(support));
  }
  return model;
}

void CrfModel::SaveFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("CrfModel::SaveFile: cannot open " + path);
  Save(os);
}

CrfModel CrfModel::LoadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("CrfModel::LoadFile: cannot open " + path);
  return Load(is);
}

}  // namespace whoiscrf::crf
