// Stochastic gradient descent trainer for the CRF (the paper implemented
// "optimization routines such as stochastic gradient descent" alongside
// L-BFGS). Per-sequence updates with a 1/(1 + t/t0) learning-rate schedule
// and L2 regularization applied via the weight-scaling trick (Bottou), so
// each update touches only the features present in the sequence.
#pragma once

#include <cstdint>
#include <functional>

#include "crf/likelihood.h"
#include "crf/model.h"

namespace whoiscrf::crf {

class SgdOptimizer {
 public:
  struct Options {
    int epochs = 30;
    double eta0 = 0.5;       // initial learning rate
    double l2_sigma = 10.0;  // Gaussian prior stddev; <= 0 disables
    uint64_t seed = 1;       // shuffling seed
    bool verbose = false;
    // Cooperative cancellation, polled before every epoch: when it returns
    // true the optimizer stops and returns the weights as of the last
    // completed epoch with Result::stopped set.
    std::function<bool()> should_stop;
  };

  struct Result {
    double final_nll = 0.0;  // unpenalized NLL over the data on last epoch
    int epochs_run = 0;
    // True when Options::should_stop ended the run before the epoch cap.
    bool stopped = false;
  };

  SgdOptimizer() : SgdOptimizer(Options()) {}
  explicit SgdOptimizer(Options options);

  // Optimizes model.weights() in place over the dataset.
  Result Train(CrfModel& model, const Dataset& data) const;

 private:
  Options options_;
};

}  // namespace whoiscrf::crf
