#include "crf/evaluation.h"

#include <stdexcept>

#include "util/table.h"

namespace whoiscrf::crf {

Evaluator::Evaluator(size_t num_labels)
    : num_labels_(num_labels), confusion_(num_labels * num_labels, 0) {
  if (num_labels == 0) {
    throw std::invalid_argument("Evaluator: num_labels must be positive");
  }
}

void Evaluator::AddDocument(const std::vector<int>& gold,
                            const std::vector<int>& predicted) {
  if (gold.size() != predicted.size()) {
    throw std::invalid_argument("Evaluator: length mismatch");
  }
  bool any_wrong = false;
  for (size_t t = 0; t < gold.size(); ++t) {
    const auto g = static_cast<size_t>(gold[t]);
    const auto p = static_cast<size_t>(predicted[t]);
    if (g >= num_labels_ || p >= num_labels_) {
      throw std::out_of_range("Evaluator: label out of range");
    }
    ++confusion_[g * num_labels_ + p];
    ++result_.total_lines;
    if (g != p) {
      ++result_.wrong_lines;
      any_wrong = true;
    }
  }
  ++result_.total_documents;
  if (any_wrong) ++result_.wrong_documents;
}

size_t Evaluator::confusion(size_t gold, size_t predicted) const {
  return confusion_[gold * num_labels_ + predicted];
}

double Evaluator::Recall(size_t label) const {
  size_t total = 0;
  for (size_t p = 0; p < num_labels_; ++p) total += confusion(label, p);
  return total == 0 ? 0.0
                    : static_cast<double>(confusion(label, label)) /
                          static_cast<double>(total);
}

double Evaluator::Precision(size_t label) const {
  size_t total = 0;
  for (size_t g = 0; g < num_labels_; ++g) total += confusion(g, label);
  return total == 0 ? 0.0
                    : static_cast<double>(confusion(label, label)) /
                          static_cast<double>(total);
}

std::string Evaluator::RenderConfusion(
    const std::vector<std::string>& names) const {
  if (names.size() != num_labels_) {
    throw std::invalid_argument("Evaluator: names size mismatch");
  }
  std::vector<std::string> headers{"gold\\pred"};
  for (const auto& n : names) headers.push_back(n);
  util::TextTable table(std::move(headers));
  for (size_t g = 0; g < num_labels_; ++g) {
    std::vector<std::string> row{names[g]};
    for (size_t p = 0; p < num_labels_; ++p) {
      row.push_back(std::to_string(confusion(g, p)));
    }
    table.AddRow(std::move(row));
  }
  return table.Render();
}

}  // namespace whoiscrf::crf
