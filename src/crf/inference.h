// Probabilistic inference for linear-chain CRFs (paper appendix A).
//
// All recursions run in the log domain: the paper's matrices M_t (eq. 9)
// are represented by their logarithms (the Scores struct), and products of
// M_t become log-sum-exp recursions. This is numerically exact for any
// sequence length, unlike the literal matrix-product form of eq. 10 which
// overflows for long records.
#pragma once

#include <vector>

#include "crf/model.h"

namespace whoiscrf::crf {

struct Workspace;  // crf/workspace.h

// Result of the forward-backward pass over one sequence.
struct Posteriors {
  int T = 0;
  int L = 0;
  double log_z = 0.0;            // log of eq. 3/10's normalizer
  std::vector<double> node;      // T*L, node[t*L+j]   = Pr(y_t = j | x)
  std::vector<double> edge;      // T*L*L, edge[t*L*L+i*L+j]
                                 //   = Pr(y_{t-1}=i, y_t=j | x), t >= 1
};

// log(sum_i exp(v[i])) over `n` entries, guarded against -inf inputs.
double LogSumExp(const double* v, int n);

// Computes log Z_theta(x) (eq. 10, in log domain) for the given scores.
double LogPartition(const CrfModel::Scores& scores);

// Workspace variant: forward pass only, all scratch taken from `ws`
// (alpha/lse). Bit-identical to LogPartition(scores).
double LogPartition(const CrfModel::Scores& scores, Workspace& ws);

// Full forward-backward: log-partition plus node and edge marginals
// (eq. 12). Requires scores.T >= 1.
Posteriors ForwardBackward(const CrfModel::Scores& scores);

// Workspace variant: fills and returns `ws.post` without allocating once
// the workspace has warmed up. With `with_edges` false the T*L*L edge
// marginals — only the training gradient needs them — are skipped and
// `ws.post.edge` is left empty; log_z and node marginals are still exact.
const Posteriors& ForwardBackward(const CrfModel::Scores& scores,
                                  Workspace& ws, bool with_edges = true);

// Log-probability of a specific label path under the scores:
//   sum_t theta.f - log Z. `labels` must have length scores.T.
double SequenceLogProb(const CrfModel::Scores& scores,
                       const std::vector<int>& labels);

// Brute-force log-partition by explicit enumeration of all L^T paths.
// O(L^T) — only usable for tiny T; exists to validate the dynamic program
// in tests.
double LogPartitionBruteForce(const CrfModel::Scores& scores);

}  // namespace whoiscrf::crf
