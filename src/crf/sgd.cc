#include "crf/sgd.h"

#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "crf/inference.h"
#include "crf/workspace.h"
#include "util/logging.h"
#include "util/random.h"

namespace whoiscrf::crf {

namespace {

// Collects the indices of every weight that can influence this sequence's
// score: unigram weights of its attributes, the dense transition block, and
// the observed-transition blocks of its slots.
void CollectFeatureIndices(const CrfModel& model, const CompiledSequence& seq,
                           std::vector<size_t>& out) {
  out.clear();
  const int L = model.num_labels();
  std::unordered_set<int> seen_attrs;
  std::unordered_set<int> seen_slots;
  for (const CompiledItem& item : seq) {
    for (int attr : item.attrs) {
      if (seen_attrs.insert(attr).second) {
        const size_t base = model.UnigramIndex(attr, 0);
        for (int j = 0; j < L; ++j) out.push_back(base + static_cast<size_t>(j));
      }
    }
    for (int slot : item.trans_slots) {
      if (seen_slots.insert(slot).second) {
        const size_t base = model.ObservedTransitionIndex(slot, 0, 0);
        for (int ij = 0; ij < L * L; ++ij) {
          out.push_back(base + static_cast<size_t>(ij));
        }
      }
    }
  }
  const size_t trans_base = model.TransitionIndex(0, 0);
  for (int ij = 0; ij < L * L; ++ij) {
    out.push_back(trans_base + static_cast<size_t>(ij));
  }
}

// Sparse gradient of one sequence's NLL at the model's current weights.
// Returns the sequence NLL; writes (feature index -> partial) into `grad`.
double SparseSequenceGradient(const CrfModel& model,
                              const CompiledSequence& seq,
                              const std::vector<int>& gold, Workspace& ws,
                              std::unordered_map<size_t, double>& grad) {
  grad.clear();
  if (seq.empty()) return 0.0;
  model.ComputeScores(seq, ws.scores);
  const CrfModel::Scores& scores = ws.scores;
  const Posteriors& post = ForwardBackward(scores, ws, /*with_edges=*/true);
  const int L = scores.L;

  double gold_score = 0.0;
  for (size_t t = 0; t < seq.size(); ++t) {
    gold_score +=
        scores.unary[t * static_cast<size_t>(L) + static_cast<size_t>(gold[t])];
    if (t >= 1) {
      gold_score += scores.pairwise[t * static_cast<size_t>(L * L) +
                                    static_cast<size_t>(gold[t - 1]) * L +
                                    static_cast<size_t>(gold[t])];
    }

    const double* node_t = &post.node[t * static_cast<size_t>(L)];
    for (int attr : seq[t].attrs) {
      for (int j = 0; j < L; ++j) {
        grad[model.UnigramIndex(attr, j)] += node_t[j];
      }
      grad[model.UnigramIndex(attr, gold[t])] -= 1.0;
    }
    if (t == 0) continue;
    const double* edge_t = &post.edge[t * static_cast<size_t>(L * L)];
    for (int i = 0; i < L; ++i) {
      for (int j = 0; j < L; ++j) {
        grad[model.TransitionIndex(i, j)] += edge_t[i * L + j];
      }
    }
    grad[model.TransitionIndex(gold[t - 1], gold[t])] -= 1.0;
    for (int slot : seq[t].trans_slots) {
      for (int i = 0; i < L; ++i) {
        for (int j = 0; j < L; ++j) {
          grad[model.ObservedTransitionIndex(slot, i, j)] += edge_t[i * L + j];
        }
      }
      grad[model.ObservedTransitionIndex(slot, gold[t - 1], gold[t])] -= 1.0;
    }
  }
  return post.log_z - gold_score;
}

}  // namespace

SgdOptimizer::SgdOptimizer(Options options) : options_(options) {}

SgdOptimizer::Result SgdOptimizer::Train(CrfModel& model,
                                         const Dataset& data) const {
  Result result;
  if (data.size() == 0) return result;

  std::vector<double>& w = model.weights();
  const double lambda =
      options_.l2_sigma > 0.0
          ? 1.0 / (options_.l2_sigma * options_.l2_sigma *
                   static_cast<double>(data.size()))
          : 0.0;

  // Lazy L2 shrinkage: conceptually every step multiplies every weight by
  // (1 - eta_t * lambda), but only this sequence's weights affect its
  // scores, so we bring exactly those up to date before scoring. The
  // cumulative shrink is tracked in log-space; feature k was last synced at
  // log-shrink last_sync[k].
  double log_shrink = 0.0;
  std::vector<double> last_sync(w.size(), 0.0);
  auto sync_feature = [&](size_t k) {
    if (last_sync[k] != log_shrink) {
      w[k] *= std::exp(log_shrink - last_sync[k]);
      last_sync[k] = log_shrink;
    }
  };

  util::Rng rng(options_.seed);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), size_t{0});

  std::unordered_map<size_t, double> grad;
  std::vector<size_t> touched;
  Workspace ws;
  size_t step = 0;
  double last_nll = 0.0;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (options_.should_stop && options_.should_stop()) {
      result.stopped = true;
      break;
    }
    rng.Shuffle(order);
    double epoch_nll = 0.0;
    for (size_t idx : order) {
      const double eta =
          options_.eta0 /
          (1.0 + static_cast<double>(step) / static_cast<double>(data.size()));
      ++step;

      if (lambda > 0.0) {
        const double factor = 1.0 - eta * lambda;
        log_shrink += std::log(factor);
        CollectFeatureIndices(model, data.sequences[idx], touched);
        for (size_t k : touched) sync_feature(k);
      }

      epoch_nll += SparseSequenceGradient(model, data.sequences[idx],
                                          data.labels[idx], ws, grad);
      for (const auto& [k, g] : grad) w[k] -= eta * g;
    }
    last_nll = epoch_nll;
    result.epochs_run = epoch + 1;
    if (options_.verbose) {
      LOG_INFO("sgd epoch %3d  nll=%.4f", epoch + 1, epoch_nll);
    }
  }

  // Final sweep: bring every weight up to the cumulative shrink.
  if (lambda > 0.0) {
    for (size_t k = 0; k < w.size(); ++k) sync_feature(k);
  }
  result.final_nll = last_nll;
  return result;
}

}  // namespace whoiscrf::crf
