// Trainer: builds the feature space from labeled instances (vocabulary with
// frequency trimming + transition-eligible slots) and estimates weights by
// maximizing the penalized conditional log-likelihood (paper §3.3-§3.4).
#pragma once

#include <string>
#include <vector>

#include "crf/lbfgs.h"
#include "crf/likelihood.h"
#include "crf/model.h"
#include "crf/sgd.h"

namespace whoiscrf::crf {

enum class Algorithm { kLbfgs, kSgd };

struct TrainerOptions {
  // Dictionary trimming: attributes seen fewer times than this across the
  // training corpus are dropped ("we trim words that appear very
  // infrequently", §3.3). 1 keeps everything.
  uint32_t min_attr_count = 1;
  double l2_sigma = 10.0;
  // Ablation: disable the eq. 8 observed-transition features (the model
  // keeps plain label-bigram transitions). Used by bench_ablation.
  bool use_observed_transitions = true;
  Algorithm algorithm = Algorithm::kLbfgs;
  LbfgsOptimizer::Options lbfgs;
  SgdOptimizer::Options sgd;
  size_t threads = 0;  // 0 = hardware concurrency; 1 = single-threaded
  bool verbose = false;
};

struct TrainStats {
  size_t num_sequences = 0;
  size_t num_lines = 0;
  size_t num_attributes = 0;     // retained dictionary entries
  size_t num_features = 0;       // total weights
  size_t num_transition_slots = 0;
  double final_objective = 0.0;
  int iterations = 0;
};

class Trainer {
 public:
  explicit Trainer(TrainerOptions options = {});

  // Trains a model from scratch. `label_names` fixes the state space; every
  // Instance's labels must index into it.
  CrfModel Train(const std::vector<std::string>& label_names,
                 const std::vector<Instance>& data,
                 TrainStats* stats = nullptr) const;

  // Adaptation (paper §5.3): rebuilds the feature space over old + new data,
  // warm-starts shared weights from `base`, and re-optimizes. This is the
  // "add one labeled example of the new format and retrain" workflow.
  CrfModel Adapt(const CrfModel& base, const std::vector<Instance>& data,
                 TrainStats* stats = nullptr) const;

  // Compiles instances against an existing model's feature space.
  static Dataset Compile(const CrfModel& model,
                         const std::vector<Instance>& data);

 private:
  CrfModel BuildModel(const std::vector<std::string>& label_names,
                      const std::vector<Instance>& data) const;
  void Optimize(CrfModel& model, const Dataset& dataset,
                TrainStats* stats) const;

  TrainerOptions options_;
};

}  // namespace whoiscrf::crf
