// Limited-memory BFGS (paper §3.1/§3.3: parameters are fit with L-BFGS,
// following Nocedal & Wright). Generic unconstrained minimizer over a
// differentiable objective; the two-loop recursion approximates the inverse
// Hessian from the last `history` curvature pairs, and a backtracking
// Armijo line search guarantees sufficient decrease. Curvature pairs with
// non-positive s.y are skipped so the inverse-Hessian approximation stays
// positive definite (the objective here is convex, so this is rare and
// benign).
#pragma once

#include <functional>
#include <vector>

namespace whoiscrf::crf {

class LbfgsOptimizer {
 public:
  // Telemetry snapshot of one accepted iteration, delivered through
  // Options::on_iteration (the hook the CRF trainer uses to export
  // per-iteration NLL / gradient-norm / wall-time metrics).
  struct IterationInfo {
    int iteration = 0;           // 1-based
    double value = 0.0;          // objective after the accepted step
    double grad_inf_norm = 0.0;  // ||g||_inf after the step
    double step = 0.0;           // accepted line-search step length
    int evaluations = 0;         // objective evals so far (incl. line search)
    double seconds = 0.0;        // wall time of this iteration
  };

  struct Options {
    int history = 6;                // m: stored curvature pairs
    int max_iterations = 200;
    double grad_tolerance = 1e-4;   // stop when ||g||_inf <= this
    double value_rel_tolerance = 1e-8;  // stop on tiny relative improvement
    int max_line_search_steps = 40;
    bool verbose = false;
    // Called after every accepted iteration; pure observer (must not touch
    // the weights). The gradient-norm computation it needs is skipped when
    // unset and not verbose.
    std::function<void(const IterationInfo&)> on_iteration;
    // Cooperative cancellation, polled before every iteration: when it
    // returns true the optimizer stops immediately and returns the best
    // weights so far with Result::stopped set. The lifecycle controller's
    // background retrains cancel through this hook (per-iteration latency,
    // not per-training-run).
    std::function<bool()> should_stop;
  };

  struct Result {
    double value = 0.0;
    int iterations = 0;
    bool converged = false;
    // True when Options::should_stop ended the run before convergence or
    // the iteration cap.
    bool stopped = false;
    int evaluations = 0;
  };

  // Objective: given w, writes gradient (same size) and returns f(w).
  using Objective =
      std::function<double(const std::vector<double>&, std::vector<double>&)>;

  LbfgsOptimizer() : LbfgsOptimizer(Options()) {}
  explicit LbfgsOptimizer(Options options);

  // Minimizes f starting from (and updating) `w`.
  Result Minimize(const Objective& f, std::vector<double>& w) const;

 private:
  Options options_;
};

}  // namespace whoiscrf::crf
