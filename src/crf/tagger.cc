#include "crf/tagger.h"

#include "crf/inference.h"
#include "crf/viterbi.h"

namespace whoiscrf::crf {

std::vector<int> Tagger::Tag(
    const std::vector<text::LineAttributes>& lines) const {
  if (lines.empty()) return {};
  const CompiledSequence seq = model_.Compile(lines);
  const CrfModel::Scores scores = model_.ComputeScores(seq);
  return Decode(scores).labels;
}

TagResult Tagger::TagPosterior(
    const std::vector<text::LineAttributes>& lines) const {
  TagResult result;
  if (lines.empty()) return result;
  const CompiledSequence seq = model_.Compile(lines);
  const CrfModel::Scores scores = model_.ComputeScores(seq);
  const Posteriors post = ForwardBackward(scores);
  const int L = scores.L;
  result.labels.reserve(lines.size());
  result.confidences.reserve(lines.size());
  for (int t = 0; t < post.T; ++t) {
    int best = 0;
    double best_p = -1.0;
    for (int j = 0; j < L; ++j) {
      const double p = post.node[static_cast<size_t>(t) * L + j];
      if (p > best_p) {
        best_p = p;
        best = j;
      }
    }
    result.labels.push_back(best);
    result.confidences.push_back(best_p);
  }
  result.sequence_log_prob = SequenceLogProb(scores, result.labels);
  return result;
}

TagResult Tagger::TagWithConfidence(
    const std::vector<text::LineAttributes>& lines) const {
  TagResult result;
  if (lines.empty()) return result;
  const CompiledSequence seq = model_.Compile(lines);
  const CrfModel::Scores scores = model_.ComputeScores(seq);
  const ViterbiResult vit = Decode(scores);
  const Posteriors post = ForwardBackward(scores);

  result.labels = vit.labels;
  result.confidences.reserve(vit.labels.size());
  for (size_t t = 0; t < vit.labels.size(); ++t) {
    result.confidences.push_back(
        post.node[t * static_cast<size_t>(scores.L) +
                  static_cast<size_t>(vit.labels[t])]);
  }
  result.sequence_log_prob = vit.score - post.log_z;
  return result;
}

}  // namespace whoiscrf::crf
