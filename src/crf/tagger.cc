#include "crf/tagger.h"

#include "crf/inference.h"
#include "crf/viterbi.h"
#include "crf/workspace.h"

namespace whoiscrf::crf {

std::vector<int> Tagger::Tag(
    const std::vector<text::LineAttributes>& lines) const {
  if (lines.empty()) return {};
  const CompiledSequence seq = model_.Compile(lines);
  const CrfModel::Scores scores = model_.ComputeScores(seq);
  return Decode(scores).labels;
}

TagResult Tagger::TagPosterior(
    const std::vector<text::LineAttributes>& lines) const {
  TagResult result;
  if (lines.empty()) return result;
  const CompiledSequence seq = model_.Compile(lines);
  const CrfModel::Scores scores = model_.ComputeScores(seq);
  const Posteriors post = ForwardBackward(scores);
  const int L = scores.L;
  result.labels.reserve(lines.size());
  result.confidences.reserve(lines.size());
  for (int t = 0; t < post.T; ++t) {
    int best = 0;
    double best_p = -1.0;
    for (int j = 0; j < L; ++j) {
      const double p = post.node[static_cast<size_t>(t) * L + j];
      if (p > best_p) {
        best_p = p;
        best = j;
      }
    }
    result.labels.push_back(best);
    result.confidences.push_back(best_p);
  }
  result.sequence_log_prob = SequenceLogProb(scores, result.labels);
  return result;
}

TagResult Tagger::TagWithConfidence(
    const std::vector<text::LineAttributes>& lines) const {
  TagResult result;
  if (lines.empty()) return result;
  const CompiledSequence seq = model_.Compile(lines);
  const CrfModel::Scores scores = model_.ComputeScores(seq);
  const ViterbiResult vit = Decode(scores);
  const Posteriors post = ForwardBackward(scores);

  result.labels = vit.labels;
  result.confidences.reserve(vit.labels.size());
  for (size_t t = 0; t < vit.labels.size(); ++t) {
    result.confidences.push_back(
        post.node[t * static_cast<size_t>(scores.L) +
                  static_cast<size_t>(vit.labels[t])]);
  }
  result.sequence_log_prob = vit.score - post.log_z;
  return result;
}

const std::vector<int>& Tagger::TagCompiledLabels(Workspace& ws) const {
  if (ws.seq.empty()) {
    ws.viterbi.labels.clear();
    ws.viterbi.score = 0.0;
    return ws.viterbi.labels;
  }
  model_.ComputeScores(ws.seq, ws.scores);
  return Decode(ws.scores, ws).labels;
}

const TagResult& Tagger::TagCompiledViterbi(Workspace& ws) const {
  TagResult& result = ws.tag;
  result.labels.clear();
  result.confidences.clear();
  result.sequence_log_prob = 0.0;
  if (ws.seq.empty()) return result;
  model_.ComputeScores(ws.seq, ws.scores);
  const ViterbiResult& vit = Decode(ws.scores, ws);
  result.labels.assign(vit.labels.begin(), vit.labels.end());
  // The Viterbi path's normalized log-probability needs only log Z, i.e.
  // the forward recursion — the backward pass and the T*L*L marginal
  // exponentiations of full forward-backward are skipped entirely.
  result.sequence_log_prob = vit.score - LogPartition(ws.scores, ws);
  return result;
}

const TagResult& Tagger::TagCompiled(Workspace& ws) const {
  TagResult& result = ws.tag;
  result.labels.clear();
  result.confidences.clear();
  result.sequence_log_prob = 0.0;
  if (ws.seq.empty()) return result;
  model_.ComputeScores(ws.seq, ws.scores);
  const ViterbiResult& vit = Decode(ws.scores, ws);
  const Posteriors& post = ForwardBackward(ws.scores, ws, /*with_edges=*/false);
  result.labels.assign(vit.labels.begin(), vit.labels.end());
  result.confidences.reserve(vit.labels.size());
  for (size_t t = 0; t < vit.labels.size(); ++t) {
    result.confidences.push_back(
        post.node[t * static_cast<size_t>(ws.scores.L) +
                  static_cast<size_t>(vit.labels[t])]);
  }
  result.sequence_log_prob = vit.score - post.log_z;
  return result;
}

}  // namespace whoiscrf::crf
