// Evaluation metrics from the paper (§5.1): line error rate (fraction of
// mislabeled lines across all records) and document error rate (fraction of
// records with at least one mislabeled line), plus a per-label confusion
// matrix for error analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace whoiscrf::crf {

struct EvalResult {
  size_t total_lines = 0;
  size_t wrong_lines = 0;
  size_t total_documents = 0;
  size_t wrong_documents = 0;

  double LineErrorRate() const {
    return total_lines == 0
               ? 0.0
               : static_cast<double>(wrong_lines) /
                     static_cast<double>(total_lines);
  }
  double DocumentErrorRate() const {
    return total_documents == 0
               ? 0.0
               : static_cast<double>(wrong_documents) /
                     static_cast<double>(total_documents);
  }
};

class Evaluator {
 public:
  explicit Evaluator(size_t num_labels);

  // Adds one document's predictions against gold labels (same length).
  void AddDocument(const std::vector<int>& gold,
                   const std::vector<int>& predicted);

  const EvalResult& result() const { return result_; }

  // confusion(g, p) = number of lines with gold label g predicted as p.
  size_t confusion(size_t gold, size_t predicted) const;

  // Per-label recall: fraction of gold-g lines predicted as g.
  double Recall(size_t label) const;
  // Per-label precision: fraction of predicted-g lines whose gold is g.
  double Precision(size_t label) const;

  // Pretty-printed confusion matrix with the given label names.
  std::string RenderConfusion(const std::vector<std::string>& names) const;

 private:
  size_t num_labels_;
  EvalResult result_;
  std::vector<size_t> confusion_;  // num_labels^2
};

}  // namespace whoiscrf::crf
