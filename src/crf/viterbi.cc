#include "crf/viterbi.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "crf/workspace.h"

namespace whoiscrf::crf {

ViterbiResult Decode(const CrfModel::Scores& s) {
  Workspace ws;
  Decode(s, ws);
  return std::move(ws.viterbi);
}

const ViterbiResult& Decode(const CrfModel::Scores& s, Workspace& ws) {
  if (s.T <= 0) throw std::invalid_argument("Viterbi: empty sequence");
  const int T = s.T;
  const int L = s.L;

  // V[t*L+j] is eq. 14/15's matrix; back[t*L+j] records eq. 16's argmax.
  std::vector<double>& V = ws.viterbi_score;
  std::vector<int>& back = ws.viterbi_back;
  // resize, not assign: every entry read below (rows 1..T-1 of `back`, all
  // of V) is written first; row 0 of `back` is never read.
  V.resize(static_cast<size_t>(T) * L);
  back.resize(static_cast<size_t>(T) * L);

  for (int j = 0; j < L; ++j) V[static_cast<size_t>(j)] = s.unary[static_cast<size_t>(j)];
  for (int t = 1; t < T; ++t) {
    const double* V_prev = &V[static_cast<size_t>(t - 1) * L];
    const double* pair_t = s.PairRow(t);
    for (int j = 0; j < L; ++j) {
      double best = -std::numeric_limits<double>::infinity();
      int best_i = 0;
      for (int i = 0; i < L; ++i) {
        const double cand = V_prev[i] + pair_t[i * L + j];
        if (cand > best) {
          best = cand;
          best_i = i;
        }
      }
      V[static_cast<size_t>(t) * L + j] =
          best + s.unary[static_cast<size_t>(t) * L + j];
      back[static_cast<size_t>(t) * L + j] = best_i;
    }
  }

  ViterbiResult& result = ws.viterbi;
  result.labels.assign(static_cast<size_t>(T), 0);
  double best = -std::numeric_limits<double>::infinity();
  for (int j = 0; j < L; ++j) {
    if (V[static_cast<size_t>(T - 1) * L + j] > best) {
      best = V[static_cast<size_t>(T - 1) * L + j];
      result.labels[static_cast<size_t>(T - 1)] = j;
    }
  }
  result.score = best;
  for (int t = T - 1; t > 0; --t) {  // eq. 17 backtracking
    result.labels[static_cast<size_t>(t - 1)] =
        back[static_cast<size_t>(t) * L + result.labels[static_cast<size_t>(t)]];
  }
  return result;
}

ViterbiResult DecodeBeam(const CrfModel::Scores& s, int beam_width,
                         const uint8_t* support) {
  Workspace ws;
  DecodeBeam(s, beam_width, ws, support);
  return std::move(ws.viterbi);
}

const ViterbiResult& DecodeBeam(const CrfModel::Scores& s, int beam_width,
                                Workspace& ws, const uint8_t* support) {
  if (s.T <= 0) throw std::invalid_argument("Viterbi: empty sequence");
  if (beam_width <= 0) throw std::invalid_argument("Viterbi: beam width < 1");
  const int T = s.T;
  const int L = s.L;
  const int K = std::min(beam_width, L);

  std::vector<double>& V = ws.viterbi_score;
  std::vector<int>& back = ws.viterbi_back;
  V.resize(static_cast<size_t>(T) * L);
  back.resize(static_cast<size_t>(T) * L);

  // Selects the K best labels of the V row at `t` (ties to the lower label
  // id, so narrowing the beam is deterministic) into ws.beam, ascending —
  // scanning the beam in ascending label order makes the K >= L case
  // perform Decode's comparisons in Decode's order exactly.
  auto select_beam = [&](int t) {
    const double* V_t = &V[static_cast<size_t>(t) * L];
    std::vector<int>& cand = ws.beam_cand;
    cand.resize(static_cast<size_t>(L));
    std::iota(cand.begin(), cand.end(), 0);
    std::partial_sort(cand.begin(), cand.begin() + K, cand.end(),
                      [V_t](int a, int b) {
                        if (V_t[a] != V_t[b]) return V_t[a] > V_t[b];
                        return a < b;
                      });
    ws.beam.assign(cand.begin(), cand.begin() + K);
    std::sort(ws.beam.begin(), ws.beam.end());
  };

  for (int j = 0; j < L; ++j) V[static_cast<size_t>(j)] = s.unary[static_cast<size_t>(j)];
  select_beam(0);

  for (int t = 1; t < T; ++t) {
    const double* V_prev = &V[static_cast<size_t>(t - 1) * L];
    const double* pair_t = s.PairRow(t);
    const uint8_t* support_row = support;  // support[i*L+j], row-major by i
    for (int j = 0; j < L; ++j) {
      double best = -std::numeric_limits<double>::infinity();
      int best_i = -1;
      for (int i : ws.beam) {
        if (support_row != nullptr && support_row[i * L + j] == 0) continue;
        const double cand = V_prev[i] + pair_t[i * L + j];
        if (cand > best) {
          best = cand;
          best_i = i;
        }
      }
      if (best_i < 0) {
        // Every in-beam predecessor of j is support-pruned (or the beam is
        // somehow empty of candidates): fall back to the unpruned beam so
        // the DP row stays total and backtracking cannot dead-end.
        for (int i : ws.beam) {
          const double cand = V_prev[i] + pair_t[i * L + j];
          if (cand > best) {
            best = cand;
            best_i = i;
          }
        }
        // All candidates -inf (cannot happen with finite weights, but keep
        // the backpointer row total regardless).
        if (best_i < 0) best_i = ws.beam.front();
      }
      V[static_cast<size_t>(t) * L + j] =
          best + s.unary[static_cast<size_t>(t) * L + j];
      back[static_cast<size_t>(t) * L + j] = best_i;
    }
    if (t + 1 < T) select_beam(t);
  }

  ViterbiResult& result = ws.viterbi;
  result.labels.assign(static_cast<size_t>(T), 0);
  double best = -std::numeric_limits<double>::infinity();
  for (int j = 0; j < L; ++j) {
    if (V[static_cast<size_t>(T - 1) * L + j] > best) {
      best = V[static_cast<size_t>(T - 1) * L + j];
      result.labels[static_cast<size_t>(T - 1)] = j;
    }
  }
  result.score = best;
  for (int t = T - 1; t > 0; --t) {
    result.labels[static_cast<size_t>(t - 1)] =
        back[static_cast<size_t>(t) * L + result.labels[static_cast<size_t>(t)]];
  }
  return result;
}

ViterbiResult DecodeBruteForce(const CrfModel::Scores& s) {
  if (s.T <= 0) throw std::invalid_argument("Viterbi: empty sequence");
  const int T = s.T;
  const int L = s.L;
  ViterbiResult best;
  best.score = -std::numeric_limits<double>::infinity();
  std::vector<int> labels(static_cast<size_t>(T), 0);
  while (true) {
    double score = 0.0;
    for (int t = 0; t < T; ++t) {
      score += s.unary[static_cast<size_t>(t) * L + labels[static_cast<size_t>(t)]];
      if (t >= 1) {
        score += s.PairRow(t)[labels[static_cast<size_t>(t - 1)] * L +
                              labels[static_cast<size_t>(t)]];
      }
    }
    if (score > best.score) {
      best.score = score;
      best.labels = labels;
    }
    int pos = 0;
    while (pos < T) {
      if (++labels[static_cast<size_t>(pos)] < L) break;
      labels[static_cast<size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == T) break;
  }
  return best;
}

}  // namespace whoiscrf::crf
