#include "crf/lbfgs.h"

#include <chrono>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "util/logging.h"

namespace whoiscrf::crf {

namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double InfNorm(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) {
    const double a = std::fabs(x);
    if (a > m) m = a;
  }
  return m;
}

}  // namespace

LbfgsOptimizer::LbfgsOptimizer(Options options) : options_(options) {
  if (options_.history < 1) {
    throw std::invalid_argument("LbfgsOptimizer: history must be >= 1");
  }
}

LbfgsOptimizer::Result LbfgsOptimizer::Minimize(const Objective& f,
                                                std::vector<double>& w) const {
  const size_t n = w.size();
  Result result;

  std::vector<double> grad(n);
  double value = f(w, grad);
  ++result.evaluations;

  struct Pair {
    std::vector<double> s;  // x_{k+1} - x_k
    std::vector<double> y;  // g_{k+1} - g_k
    double rho;             // 1 / (y . s)
  };
  std::deque<Pair> pairs;

  std::vector<double> direction(n);
  std::vector<double> w_next(n);
  std::vector<double> grad_next(n);
  std::vector<double> alpha_buf;

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    if (options_.should_stop && options_.should_stop()) {
      result.stopped = true;
      break;
    }
    if (InfNorm(grad) <= options_.grad_tolerance) {
      result.converged = true;
      break;
    }
    const auto iter_start = std::chrono::steady_clock::now();

    // Two-loop recursion: direction = -H_k * grad.
    direction = grad;
    alpha_buf.assign(pairs.size(), 0.0);
    for (size_t i = pairs.size(); i-- > 0;) {
      const Pair& p = pairs[i];
      alpha_buf[i] = p.rho * Dot(p.s, direction);
      for (size_t k = 0; k < n; ++k) direction[k] -= alpha_buf[i] * p.y[k];
    }
    if (!pairs.empty()) {
      const Pair& last = pairs.back();
      const double yy = Dot(last.y, last.y);
      if (yy > 0.0) {
        const double scale = Dot(last.s, last.y) / yy;
        for (double& d : direction) d *= scale;
      }
    }
    for (size_t i = 0; i < pairs.size(); ++i) {
      const Pair& p = pairs[i];
      const double beta = p.rho * Dot(p.y, direction);
      for (size_t k = 0; k < n; ++k) {
        direction[k] += (alpha_buf[i] - beta) * p.s[k];
      }
    }
    for (double& d : direction) d = -d;

    double dir_deriv = Dot(grad, direction);
    if (dir_deriv >= 0.0) {
      // Not a descent direction (can happen right after skipped updates);
      // fall back to steepest descent.
      for (size_t k = 0; k < n; ++k) direction[k] = -grad[k];
      dir_deriv = -Dot(grad, grad);
      if (dir_deriv == 0.0) {
        result.converged = true;
        break;
      }
    }

    // Backtracking Armijo line search.
    constexpr double kC1 = 1e-4;
    double step = 1.0;
    double value_next = value;
    bool accepted = false;
    for (int ls = 0; ls < options_.max_line_search_steps; ++ls) {
      for (size_t k = 0; k < n; ++k) w_next[k] = w[k] + step * direction[k];
      value_next = f(w_next, grad_next);
      ++result.evaluations;
      if (std::isfinite(value_next) &&
          value_next <= value + kC1 * step * dir_deriv) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) {
      LOG_DEBUG("lbfgs: line search failed at iter %d (f=%.6f)", iter, value);
      break;
    }

    // Store the curvature pair if it maintains positive definiteness.
    Pair p;
    p.s.resize(n);
    p.y.resize(n);
    for (size_t k = 0; k < n; ++k) {
      p.s[k] = w_next[k] - w[k];
      p.y[k] = grad_next[k] - grad[k];
    }
    const double sy = Dot(p.s, p.y);
    if (sy > 1e-10) {
      p.rho = 1.0 / sy;
      pairs.push_back(std::move(p));
      if (static_cast<int>(pairs.size()) > options_.history) {
        pairs.pop_front();
      }
    }

    const double improvement = value - value_next;
    w.swap(w_next);
    grad.swap(grad_next);
    value = value_next;
    result.iterations = iter + 1;

    if (options_.verbose || options_.on_iteration) {
      const double grad_inf = InfNorm(grad);
      if (options_.verbose) {
        LOG_INFO("lbfgs iter %3d  f=%.6f  |g|=%.3g  step=%.3g", iter + 1,
                 value, grad_inf, step);
      }
      if (options_.on_iteration) {
        IterationInfo info;
        info.iteration = iter + 1;
        info.value = value;
        info.grad_inf_norm = grad_inf;
        info.step = step;
        info.evaluations = result.evaluations;
        info.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - iter_start)
                           .count();
        options_.on_iteration(info);
      }
    }
    if (improvement >= 0.0 &&
        improvement <= options_.value_rel_tolerance *
                           (std::fabs(value) + 1e-12)) {
      result.converged = true;
      break;
    }
  }

  result.value = value;
  return result;
}

}  // namespace whoiscrf::crf
